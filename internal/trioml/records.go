// Package trioml implements Trio-ML, the paper's in-network aggregation
// application (§4), together with the timer-thread straggler mitigation of
// §5. It runs as a native application on internal/trio/pfe with explicit
// instruction accounting calibrated to the paper's Microcode analysis
// (§6.3: ≈60 static instructions; ≈1.2 run-time instructions per gradient in
// the tail-aggregation loop).
package trioml

import (
	"github.com/trioml/triogo/internal/bitfield"
	"github.com/trioml/triogo/internal/sim"
)

// JobBlockID is the pseudo block id under which a job record is keyed in the
// aggregation hash table ("JOB_ID = 1, BLOCK_ID = -1" in Fig. 9).
const JobBlockID = 0xFFFFFFFF

// ResultSrcID marks a packet as an aggregation result rather than a worker
// contribution; first-level PFEs use it to recognize results arriving from a
// top-level aggregator for local distribution.
const ResultSrcID = 0xFF

// MaxSources is the number of workers a job's source bitmask can describe
// (four 64-bit mask words, Appendix A.1).
const MaxSources = 256

// Key packs (job, block) into a hash-engine key.
func Key(jobID uint8, blockID uint32) uint64 {
	return uint64(jobID)<<32 | uint64(blockID)
}

// SplitKey recovers (job, block) from a hash key.
func SplitKey(k uint64) (jobID uint8, blockID uint32) {
	return uint8(k >> 32), uint32(k)
}

// jobLayout is trio_ml_job_ctx_t (Fig. 17): 58 bytes.
var jobLayout = bitfield.NewLayout(
	bitfield.Field{Name: "block_curr_cnt", Width: 16},
	bitfield.Field{Name: "block_cnt_max", Width: 12},
	bitfield.Field{Name: "block_grad_max", Width: 12},
	bitfield.Field{Name: "block_exp", Width: 8}, // milliseconds
	bitfield.Field{Name: "block_total_cnt", Width: 32},
	bitfield.Field{Name: "out_src_addr", Width: 32},
	bitfield.Field{Name: "out_dst_addr", Width: 32},
	bitfield.Field{Name: "out_nh_addr", Width: 32},
	bitfield.Field{Name: "", Width: 24},
	bitfield.Field{Name: "src_cnt", Width: 8},
	bitfield.Field{Name: "src_mask_0", Width: 64},
	bitfield.Field{Name: "src_mask_1", Width: 64},
	bitfield.Field{Name: "src_mask_2", Width: 64},
	bitfield.Field{Name: "src_mask_3", Width: 64},
)

// blockLayout is trio_ml_block_ctx_t (Fig. 18): 58 bytes. The paper leaves a
// 24-bit alignment hole before rcvd_cnt; this implementation names 16 bits
// of it gen_id so a block record can distinguish consecutive iterations
// (the packet header's gen_id field exists for exactly this purpose, §4),
// and 4 bits of the hole before grad_cnt agg_age_op: the highest age_op
// carried by any contribution aggregated into the block, so hierarchical
// levels can propagate straggler provenance upward (which level of the tree
// aged out) without growing the record.
var blockLayout = bitfield.NewLayout(
	bitfield.Field{Name: "block_exp", Width: 8},
	bitfield.Field{Name: "block_age", Width: 8},
	bitfield.Field{Name: "block_start_time", Width: 64},
	bitfield.Field{Name: "job_ctx_paddr", Width: 32},
	bitfield.Field{Name: "aggr_paddr", Width: 32},
	bitfield.Field{Name: "", Width: 16},
	bitfield.Field{Name: "agg_age_op", Width: 4},
	bitfield.Field{Name: "grad_cnt", Width: 12},
	bitfield.Field{Name: "gen_id", Width: 16},
	bitfield.Field{Name: "", Width: 8},
	bitfield.Field{Name: "rcvd_cnt", Width: 8},
	bitfield.Field{Name: "rcvd_mask_0", Width: 64},
	bitfield.Field{Name: "rcvd_mask_1", Width: 64},
	bitfield.Field{Name: "rcvd_mask_2", Width: 64},
	bitfield.Field{Name: "rcvd_mask_3", Width: 64},
)

// RecordBytes is the size of both record structures (58 bytes per the
// paper); records are read and written as 64-byte memory transactions.
var RecordBytes = jobLayout.Bytes()

// Pre-resolved field handles: codec hot paths run per packet, so the name
// lookups are paid once here rather than on every encode/decode.
var (
	jobF = struct {
		blockCurrCnt, blockCntMax, blockGradMax, blockExp, blockTotalCnt,
		outSrcAddr, outDstAddr, outNhAddr, srcCnt bitfield.Handle
		srcMask [4]bitfield.Handle
	}{
		blockCurrCnt:  jobLayout.Handle("block_curr_cnt"),
		blockCntMax:   jobLayout.Handle("block_cnt_max"),
		blockGradMax:  jobLayout.Handle("block_grad_max"),
		blockExp:      jobLayout.Handle("block_exp"),
		blockTotalCnt: jobLayout.Handle("block_total_cnt"),
		outSrcAddr:    jobLayout.Handle("out_src_addr"),
		outDstAddr:    jobLayout.Handle("out_dst_addr"),
		outNhAddr:     jobLayout.Handle("out_nh_addr"),
		srcCnt:        jobLayout.Handle("src_cnt"),
		srcMask: [4]bitfield.Handle{
			jobLayout.Handle("src_mask_0"), jobLayout.Handle("src_mask_1"),
			jobLayout.Handle("src_mask_2"), jobLayout.Handle("src_mask_3"),
		},
	}
	blockF = struct {
		blockExp, blockAge, blockStartTime, jobCtxPAddr, aggrPAddr,
		aggAgeOp, gradCnt, genID, rcvdCnt bitfield.Handle
		rcvdMask [4]bitfield.Handle
	}{
		blockExp:       blockLayout.Handle("block_exp"),
		blockAge:       blockLayout.Handle("block_age"),
		blockStartTime: blockLayout.Handle("block_start_time"),
		jobCtxPAddr:    blockLayout.Handle("job_ctx_paddr"),
		aggrPAddr:      blockLayout.Handle("aggr_paddr"),
		aggAgeOp:       blockLayout.Handle("agg_age_op"),
		gradCnt:        blockLayout.Handle("grad_cnt"),
		genID:          blockLayout.Handle("gen_id"),
		rcvdCnt:        blockLayout.Handle("rcvd_cnt"),
		rcvdMask: [4]bitfield.Handle{
			blockLayout.Handle("rcvd_mask_0"), blockLayout.Handle("rcvd_mask_1"),
			blockLayout.Handle("rcvd_mask_2"), blockLayout.Handle("rcvd_mask_3"),
		},
	}
)

// recordTxnBytes rounds the record size up to the 8-byte transaction grain.
const recordTxnBytes = 64

// JobRecord is the decoded form of trio_ml_job_ctx_t.
type JobRecord struct {
	BlockCurrCnt  uint16
	BlockCntMax   uint16 // 12 bits
	BlockGradMax  uint16 // 12 bits
	BlockExpMs    uint8
	BlockTotalCnt uint32
	OutSrcAddr    uint32
	OutDstAddr    uint32
	OutNhAddr     uint32
	SrcCnt        uint8
	SrcMask       [4]uint64
}

func (j *JobRecord) encode(b []byte) {
	jobF.blockCurrCnt.Put(b, uint64(j.BlockCurrCnt))
	jobF.blockCntMax.Put(b, uint64(j.BlockCntMax))
	jobF.blockGradMax.Put(b, uint64(j.BlockGradMax))
	jobF.blockExp.Put(b, uint64(j.BlockExpMs))
	jobF.blockTotalCnt.Put(b, uint64(j.BlockTotalCnt))
	jobF.outSrcAddr.Put(b, uint64(j.OutSrcAddr))
	jobF.outDstAddr.Put(b, uint64(j.OutDstAddr))
	jobF.outNhAddr.Put(b, uint64(j.OutNhAddr))
	jobF.srcCnt.Put(b, uint64(j.SrcCnt))
	for i, m := range j.SrcMask {
		jobF.srcMask[i].Put(b, m)
	}
}

func decodeJob(b []byte) JobRecord {
	var j JobRecord
	j.BlockCurrCnt = uint16(jobF.blockCurrCnt.Get(b))
	j.BlockCntMax = uint16(jobF.blockCntMax.Get(b))
	j.BlockGradMax = uint16(jobF.blockGradMax.Get(b))
	j.BlockExpMs = uint8(jobF.blockExp.Get(b))
	j.BlockTotalCnt = uint32(jobF.blockTotalCnt.Get(b))
	j.OutSrcAddr = uint32(jobF.outSrcAddr.Get(b))
	j.OutDstAddr = uint32(jobF.outDstAddr.Get(b))
	j.OutNhAddr = uint32(jobF.outNhAddr.Get(b))
	j.SrcCnt = uint8(jobF.srcCnt.Get(b))
	for i := range j.SrcMask {
		j.SrcMask[i] = jobF.srcMask[i].Get(b)
	}
	return j
}

// BlockRecord is the decoded form of trio_ml_block_ctx_t.
type BlockRecord struct {
	BlockExpMs     uint8
	BlockAge       uint8
	BlockStartTime sim.Time
	JobCtxPAddr    uint32
	AggrPAddr      uint32
	AggAgeOp       uint8  // 4 bits: max age_op over aggregated contributions
	GradCnt        uint16 // 12 bits
	GenID          uint16
	RcvdCnt        uint8
	RcvdMask       [4]uint64
}

func (r *BlockRecord) encode(b []byte) {
	blockF.blockExp.Put(b, uint64(r.BlockExpMs))
	blockF.blockAge.Put(b, uint64(r.BlockAge))
	blockF.blockStartTime.Put(b, uint64(r.BlockStartTime))
	blockF.jobCtxPAddr.Put(b, uint64(r.JobCtxPAddr))
	blockF.aggrPAddr.Put(b, uint64(r.AggrPAddr))
	blockF.aggAgeOp.Put(b, uint64(r.AggAgeOp))
	blockF.gradCnt.Put(b, uint64(r.GradCnt))
	blockF.genID.Put(b, uint64(r.GenID))
	blockF.rcvdCnt.Put(b, uint64(r.RcvdCnt))
	for i, m := range r.RcvdMask {
		blockF.rcvdMask[i].Put(b, m)
	}
}

func decodeBlock(b []byte) BlockRecord {
	var r BlockRecord
	r.BlockExpMs = uint8(blockF.blockExp.Get(b))
	r.BlockAge = uint8(blockF.blockAge.Get(b))
	r.BlockStartTime = sim.Time(blockF.blockStartTime.Get(b))
	r.JobCtxPAddr = uint32(blockF.jobCtxPAddr.Get(b))
	r.AggrPAddr = uint32(blockF.aggrPAddr.Get(b))
	r.AggAgeOp = uint8(blockF.aggAgeOp.Get(b))
	r.GradCnt = uint16(blockF.gradCnt.Get(b))
	r.GenID = uint16(blockF.genID.Get(b))
	r.RcvdCnt = uint8(blockF.rcvdCnt.Get(b))
	for i := range r.RcvdMask {
		r.RcvdMask[i] = blockF.rcvdMask[i].Get(b)
	}
	return r
}

// maskBit reports whether source id s is set in a 4-word mask.
func maskBit(mask *[4]uint64, s uint8) bool {
	return mask[s/64]&(1<<(s%64)) != 0
}

// setMaskBit sets source id s in a 4-word mask.
func setMaskBit(mask *[4]uint64, s uint8) {
	mask[s/64] |= 1 << (s % 64)
}
