// Package trioml implements Trio-ML, the paper's in-network aggregation
// application (§4), together with the timer-thread straggler mitigation of
// §5. It runs as a native application on internal/trio/pfe with explicit
// instruction accounting calibrated to the paper's Microcode analysis
// (§6.3: ≈60 static instructions; ≈1.2 run-time instructions per gradient in
// the tail-aggregation loop).
package trioml

import (
	"github.com/trioml/triogo/internal/bitfield"
	"github.com/trioml/triogo/internal/sim"
)

// JobBlockID is the pseudo block id under which a job record is keyed in the
// aggregation hash table ("JOB_ID = 1, BLOCK_ID = -1" in Fig. 9).
const JobBlockID = 0xFFFFFFFF

// ResultSrcID marks a packet as an aggregation result rather than a worker
// contribution; first-level PFEs use it to recognize results arriving from a
// top-level aggregator for local distribution.
const ResultSrcID = 0xFF

// MaxSources is the number of workers a job's source bitmask can describe
// (four 64-bit mask words, Appendix A.1).
const MaxSources = 256

// Key packs (job, block) into a hash-engine key.
func Key(jobID uint8, blockID uint32) uint64 {
	return uint64(jobID)<<32 | uint64(blockID)
}

// SplitKey recovers (job, block) from a hash key.
func SplitKey(k uint64) (jobID uint8, blockID uint32) {
	return uint8(k >> 32), uint32(k)
}

// jobLayout is trio_ml_job_ctx_t (Fig. 17): 58 bytes.
var jobLayout = bitfield.NewLayout(
	bitfield.Field{Name: "block_curr_cnt", Width: 16},
	bitfield.Field{Name: "block_cnt_max", Width: 12},
	bitfield.Field{Name: "block_grad_max", Width: 12},
	bitfield.Field{Name: "block_exp", Width: 8}, // milliseconds
	bitfield.Field{Name: "block_total_cnt", Width: 32},
	bitfield.Field{Name: "out_src_addr", Width: 32},
	bitfield.Field{Name: "out_dst_addr", Width: 32},
	bitfield.Field{Name: "out_nh_addr", Width: 32},
	bitfield.Field{Name: "", Width: 24},
	bitfield.Field{Name: "src_cnt", Width: 8},
	bitfield.Field{Name: "src_mask_0", Width: 64},
	bitfield.Field{Name: "src_mask_1", Width: 64},
	bitfield.Field{Name: "src_mask_2", Width: 64},
	bitfield.Field{Name: "src_mask_3", Width: 64},
)

// blockLayout is trio_ml_block_ctx_t (Fig. 18): 58 bytes. The paper leaves a
// 24-bit alignment hole before rcvd_cnt; this implementation names 16 bits
// of it gen_id so a block record can distinguish consecutive iterations
// (the packet header's gen_id field exists for exactly this purpose, §4).
var blockLayout = bitfield.NewLayout(
	bitfield.Field{Name: "block_exp", Width: 8},
	bitfield.Field{Name: "block_age", Width: 8},
	bitfield.Field{Name: "block_start_time", Width: 64},
	bitfield.Field{Name: "job_ctx_paddr", Width: 32},
	bitfield.Field{Name: "aggr_paddr", Width: 32},
	bitfield.Field{Name: "", Width: 20},
	bitfield.Field{Name: "grad_cnt", Width: 12},
	bitfield.Field{Name: "gen_id", Width: 16},
	bitfield.Field{Name: "", Width: 8},
	bitfield.Field{Name: "rcvd_cnt", Width: 8},
	bitfield.Field{Name: "rcvd_mask_0", Width: 64},
	bitfield.Field{Name: "rcvd_mask_1", Width: 64},
	bitfield.Field{Name: "rcvd_mask_2", Width: 64},
	bitfield.Field{Name: "rcvd_mask_3", Width: 64},
)

// RecordBytes is the size of both record structures (58 bytes per the
// paper); records are read and written as 64-byte memory transactions.
var RecordBytes = jobLayout.Bytes()

// recordTxnBytes rounds the record size up to the 8-byte transaction grain.
const recordTxnBytes = 64

// JobRecord is the decoded form of trio_ml_job_ctx_t.
type JobRecord struct {
	BlockCurrCnt  uint16
	BlockCntMax   uint16 // 12 bits
	BlockGradMax  uint16 // 12 bits
	BlockExpMs    uint8
	BlockTotalCnt uint32
	OutSrcAddr    uint32
	OutDstAddr    uint32
	OutNhAddr     uint32
	SrcCnt        uint8
	SrcMask       [4]uint64
}

func (j *JobRecord) encode(b []byte) {
	jobLayout.Put(b, "block_curr_cnt", uint64(j.BlockCurrCnt))
	jobLayout.Put(b, "block_cnt_max", uint64(j.BlockCntMax))
	jobLayout.Put(b, "block_grad_max", uint64(j.BlockGradMax))
	jobLayout.Put(b, "block_exp", uint64(j.BlockExpMs))
	jobLayout.Put(b, "block_total_cnt", uint64(j.BlockTotalCnt))
	jobLayout.Put(b, "out_src_addr", uint64(j.OutSrcAddr))
	jobLayout.Put(b, "out_dst_addr", uint64(j.OutDstAddr))
	jobLayout.Put(b, "out_nh_addr", uint64(j.OutNhAddr))
	jobLayout.Put(b, "src_cnt", uint64(j.SrcCnt))
	for i, m := range j.SrcMask {
		jobLayout.Put(b, maskField("src_mask_", i), m)
	}
}

func decodeJob(b []byte) JobRecord {
	var j JobRecord
	j.BlockCurrCnt = uint16(jobLayout.Get(b, "block_curr_cnt"))
	j.BlockCntMax = uint16(jobLayout.Get(b, "block_cnt_max"))
	j.BlockGradMax = uint16(jobLayout.Get(b, "block_grad_max"))
	j.BlockExpMs = uint8(jobLayout.Get(b, "block_exp"))
	j.BlockTotalCnt = uint32(jobLayout.Get(b, "block_total_cnt"))
	j.OutSrcAddr = uint32(jobLayout.Get(b, "out_src_addr"))
	j.OutDstAddr = uint32(jobLayout.Get(b, "out_dst_addr"))
	j.OutNhAddr = uint32(jobLayout.Get(b, "out_nh_addr"))
	j.SrcCnt = uint8(jobLayout.Get(b, "src_cnt"))
	for i := range j.SrcMask {
		j.SrcMask[i] = jobLayout.Get(b, maskField("src_mask_", i))
	}
	return j
}

// BlockRecord is the decoded form of trio_ml_block_ctx_t.
type BlockRecord struct {
	BlockExpMs     uint8
	BlockAge       uint8
	BlockStartTime sim.Time
	JobCtxPAddr    uint32
	AggrPAddr      uint32
	GradCnt        uint16 // 12 bits
	GenID          uint16
	RcvdCnt        uint8
	RcvdMask       [4]uint64
}

func (r *BlockRecord) encode(b []byte) {
	blockLayout.Put(b, "block_exp", uint64(r.BlockExpMs))
	blockLayout.Put(b, "block_age", uint64(r.BlockAge))
	blockLayout.Put(b, "block_start_time", uint64(r.BlockStartTime))
	blockLayout.Put(b, "job_ctx_paddr", uint64(r.JobCtxPAddr))
	blockLayout.Put(b, "aggr_paddr", uint64(r.AggrPAddr))
	blockLayout.Put(b, "grad_cnt", uint64(r.GradCnt))
	blockLayout.Put(b, "gen_id", uint64(r.GenID))
	blockLayout.Put(b, "rcvd_cnt", uint64(r.RcvdCnt))
	for i, m := range r.RcvdMask {
		blockLayout.Put(b, maskField("rcvd_mask_", i), m)
	}
}

func decodeBlock(b []byte) BlockRecord {
	var r BlockRecord
	r.BlockExpMs = uint8(blockLayout.Get(b, "block_exp"))
	r.BlockAge = uint8(blockLayout.Get(b, "block_age"))
	r.BlockStartTime = sim.Time(blockLayout.Get(b, "block_start_time"))
	r.JobCtxPAddr = uint32(blockLayout.Get(b, "job_ctx_paddr"))
	r.AggrPAddr = uint32(blockLayout.Get(b, "aggr_paddr"))
	r.GradCnt = uint16(blockLayout.Get(b, "grad_cnt"))
	r.GenID = uint16(blockLayout.Get(b, "gen_id"))
	r.RcvdCnt = uint8(blockLayout.Get(b, "rcvd_cnt"))
	for i := range r.RcvdMask {
		r.RcvdMask[i] = blockLayout.Get(b, maskField("rcvd_mask_", i))
	}
	return r
}

func maskField(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// maskBit reports whether source id s is set in a 4-word mask.
func maskBit(mask *[4]uint64, s uint8) bool {
	return mask[s/64]&(1<<(s%64)) != 0
}

// setMaskBit sets source id s in a 4-word mask.
func setMaskBit(mask *[4]uint64, s uint8) {
	mask[s/64] |= 1 << (s % 64)
}
