package trioml

import (
	"encoding/binary"
	"fmt"

	"github.com/trioml/triogo/internal/packet"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/pfe"
	"github.com/trioml/triogo/internal/trio/smem"
)

// Instruction cost model, calibrated to the paper's Microcode analysis
// (§6.3): the program is ≈60 static instructions; the tail-aggregation loop
// runs ≈1.2 instructions per gradient; the result-build loop runs once per
// block and is cheaper per gradient.
const (
	// StaticInstructions is the static size of the aggregation program.
	StaticInstructions = 60

	instrPacketOverhead = 10 // parse, key build, hash lookup glue
	instrBlockCreate    = 12 // record init, job update, buffer hookup
	instrPerChunk       = 20 // 16 gradients per 64-byte chunk ⇒ 1.25 instr/gradient
	chunkGrads          = 16 // 64-byte tail chunks (Fig. 10)
	resultChunkGrads    = 64 // 256-byte result-build chunks (Fig. 10)
	instrPerResultChunk = 16 // once per block, "uses less processing time"
	instrResultHeader   = 12 // rebuild IP/UDP/Trio-ML headers from records
)

// RecommendedPFEConfig returns a PFE configuration matching the measured
// 5th-generation operating point: a thread has one instruction in flight at
// a time, so its effective per-instruction latency is the PPE pipeline depth
// (≈20 cycles at 1 GHz), and the shared memory runs 12 RMW engines.
func RecommendedPFEConfig() pfe.Config {
	cfg := pfe.DefaultConfig()
	cfg.CyclesPerInst = 20
	cfg.Mem = smem.Config{NumRMWEngines: 12}
	return cfg
}

// JobConfig is the control-plane description of one aggregation job.
type JobConfig struct {
	JobID   uint8
	Sources []uint8 // expected src_ids (workers, or lower-level PFEs)

	BlockCntMax  int      // max concurrent blocks (memory sharing cap); default 4095
	BlockGradMax int      // max gradients per block; default 1024
	BlockExpiry  sim.Time // straggler timeout; default 10 ms (rounded to ms in the record)

	// Result routing. Single-level jobs multicast results to ResultPorts.
	// First-level jobs in a hierarchy instead unicast upward: set
	// UpstreamPort >= 0 and the src_id this aggregator contributes as.
	ResultSpec    packet.UDPSpec
	ResultPorts   []int
	UpstreamPort  int // -1 when unused
	UpstreamSrcID uint8

	// DistributePorts re-multicast Result packets (src_id == ResultSrcID)
	// arriving from an upper-level aggregator to local workers.
	DistributePorts []int
}

// Stats counts aggregator activity.
type Stats struct {
	Packets          uint64
	NonAggPkts       uint64
	NoJobDrops       uint64
	NoBufferDrops    uint64
	StaleDrops       uint64
	Duplicates       uint64
	ResultReplays    uint64 // retransmits answered from the served-result cache
	BlocksCreated    uint64
	BlocksCompleted  uint64
	BlocksDegraded   uint64 // straggler-mitigated partial results
	SourcesDemoted   uint64 // permanent stragglers removed (§5 advanced mitigation)
	ResultsEmitted   uint64
	Distributed      uint64
	GradsAggregated  uint64
	TimerScans       uint64
	TimerScanRecords uint64
}

// jobState is the control-plane mirror of an installed job: the addresses
// behind the in-memory records plus routing config. The authoritative
// aggregation state lives in the PFE's shared memory and hash table.
type jobState struct {
	cfg     JobConfig
	recAddr uint64

	freeBufs []uint64          // aggregation buffer pool (DMEM)
	freeRecs []uint64          // block record pool
	bufOf    map[uint64]uint64 // hash key -> buffer, for pool recycling
	demoted  map[uint8]bool    // sources removed by advanced mitigation

	// Served-result replay cache (EnableResultReplay; nil when off). A
	// contribution for a block whose result was already emitted gets the
	// original Result frame re-sent instead of recreating a one-source
	// record — the end-host retry idempotence NetRPC argues in-network
	// compute needs. Host-side control-plane state, bounded by servedCap.
	served     map[uint64]*servedResult
	servedRing []servedKey
	servedHead int
	servedCap  int
}

type servedResult struct {
	genID uint16
	frame []byte
}

// servedKey is one FIFO-eviction slot; the generation disambiguates a ring
// slot from a later re-serve of the same block id.
type servedKey struct {
	key uint64
	gen uint16
}

// Aggregator is the Trio-ML application on one PFE.
type Aggregator struct {
	pfe  *pfe.PFE
	jobs map[uint8]*jobState

	// LevelCode is the age_op value this aggregator stamps on results it
	// degrades by aging (straggler timeout). Zero behaves as 1, the flat
	// single-router value. Hierarchical trees (internal/tree) assign
	// level+1 so a receiver can tell WHICH level of the tree timed out: 1
	// means a leaf ToR aged waiting on a worker, >= 2 means a spine aged
	// waiting on a whole rack subtree — the signal workers use to
	// distinguish "accept the partial" from "gen-restart the block".
	LevelCode uint8

	stats Stats

	// Fallback handles non-aggregation traffic; nil drops it.
	Fallback pfe.App
	// OnAggregated observes each aggregated packet: arrival, thread
	// completion time, and gradient count (Fig. 15 instrumentation).
	OnAggregated func(arrival, done sim.Time, grads int)
	// OnResult observes each emitted result.
	OnResult func(hdr packet.TrioML, at sim.Time)
	// OnDemotion observes permanent-straggler demotions (§5 advanced
	// mitigation).
	OnDemotion func(jobID, src uint8, at sim.Time)

	advanced *advancedState

	// Per-packet scratch, reused across Process calls. The simulation is
	// single-threaded and a context runs to completion, so one set suffices;
	// this keeps the Fig. 10 fast path allocation-free.
	frame packet.Frame
	gs    gradStream
	rec   [recordTxnBytes]byte // record read/write staging
	res   []int32              // result-build gradient accumulator
}

// New installs a Trio-ML aggregator as p's application.
func New(p *pfe.PFE) *Aggregator {
	a := &Aggregator{pfe: p, jobs: make(map[uint8]*jobState)}
	p.SetApp(a)
	return a
}

// Stats returns a snapshot of the counters.
func (a *Aggregator) Stats() Stats { return a.stats }

// InstallJob performs the control-plane setup of §4: it writes the job
// record, registers it in the aggregation hash table under (job_id, -1), and
// provisions the block-record and aggregation-buffer pools.
func (a *Aggregator) InstallJob(cfg JobConfig) error {
	if _, dup := a.jobs[cfg.JobID]; dup {
		return fmt.Errorf("trioml: job %d already installed", cfg.JobID)
	}
	if len(cfg.Sources) == 0 || len(cfg.Sources) > MaxSources {
		return fmt.Errorf("trioml: job needs 1..%d sources, got %d", MaxSources, len(cfg.Sources))
	}
	if cfg.BlockCntMax == 0 {
		cfg.BlockCntMax = 4095
	}
	if cfg.BlockCntMax > 4095 {
		return fmt.Errorf("trioml: block_cnt_max %d exceeds 12-bit field", cfg.BlockCntMax)
	}
	if cfg.BlockGradMax == 0 {
		cfg.BlockGradMax = packet.MaxGradientsPerPacket
	}
	if cfg.BlockGradMax > 4095 {
		return fmt.Errorf("trioml: block_grad_max %d exceeds 12-bit field", cfg.BlockGradMax)
	}
	if cfg.BlockExpiry == 0 {
		cfg.BlockExpiry = 10 * sim.Millisecond
	}
	expiryMs := int64(cfg.BlockExpiry / sim.Millisecond)
	if expiryMs < 1 || expiryMs > 255 {
		return fmt.Errorf("trioml: block expiry %v outside the record's 1..255 ms range", cfg.BlockExpiry)
	}
	rec := JobRecord{
		BlockCntMax:  uint16(cfg.BlockCntMax),
		BlockGradMax: uint16(cfg.BlockGradMax),
		BlockExpMs:   uint8(expiryMs),
		OutSrcAddr:   binary.BigEndian.Uint32(cfg.ResultSpec.SrcIP[:]),
		OutDstAddr:   binary.BigEndian.Uint32(cfg.ResultSpec.DstIP[:]),
		SrcCnt:       uint8(len(cfg.Sources)),
	}
	seen := map[uint8]bool{}
	for _, s := range cfg.Sources {
		if s == ResultSrcID {
			return fmt.Errorf("trioml: source id %#x is reserved for results", ResultSrcID)
		}
		if seen[s] {
			return fmt.Errorf("trioml: duplicate source id %d", s)
		}
		seen[s] = true
		setMaskBit(&rec.SrcMask, s)
	}

	js := &jobState{cfg: cfg, bufOf: make(map[uint64]uint64)}
	mem := a.pfe.Mem
	js.recAddr = mem.Alloc(smem.TierSRAM, recordTxnBytes)
	buf := make([]byte, recordTxnBytes)
	rec.encode(buf)
	mem.WriteRaw(js.recAddr, buf)

	// Block records live in SRAM (hot, small); aggregation buffers live in
	// the DRAM-backed tier ("the aggregation buffer in the Shared Memory
	// System (DMEM)", Fig. 10).
	for i := 0; i < cfg.BlockCntMax; i++ {
		js.freeRecs = append(js.freeRecs, mem.Alloc(smem.TierSRAM, recordTxnBytes))
		js.freeBufs = append(js.freeBufs, mem.Alloc(smem.TierDRAM, uint64(4*cfg.BlockGradMax)))
	}

	if ok, _ := a.pfe.Hash.Insert(0, Key(cfg.JobID, JobBlockID), js.recAddr); !ok {
		return fmt.Errorf("trioml: hash collision installing job %d", cfg.JobID)
	}
	a.jobs[cfg.JobID] = js
	return nil
}

// EnableResultReplay turns on the served-result cache for a job: the last
// `window` emitted Result frames are retained host-side and replayed to a
// source that retransmits a contribution for an already-served block. Off by
// default — without it, such a retransmit recreates the block and ages out
// as a one-source degraded result, which breaks bit-exactness for the
// retransmitting source. Enable it whenever sources retransmit (fault runs).
func (a *Aggregator) EnableResultReplay(jobID uint8, window int) error {
	js := a.jobs[jobID]
	if js == nil {
		return fmt.Errorf("trioml: job %d not installed", jobID)
	}
	if window <= 0 {
		window = 1024
	}
	js.served = make(map[uint64]*servedResult, window)
	js.servedCap = window
	return nil
}

// cacheServed retains a just-emitted Result frame for replay, evicting the
// oldest entries beyond the window.
func (js *jobState) cacheServed(key uint64, gen uint16, frame []byte) {
	if old := js.served[key]; old != nil {
		old.genID, old.frame = gen, frame
	} else {
		js.served[key] = &servedResult{genID: gen, frame: frame}
	}
	js.servedRing = append(js.servedRing, servedKey{key: key, gen: gen})
	for len(js.servedRing)-js.servedHead > js.servedCap {
		k := js.servedRing[js.servedHead]
		js.servedHead++
		if sr := js.served[k.key]; sr != nil && sr.genID == k.gen {
			delete(js.served, k.key)
		}
	}
	if js.servedHead > js.servedCap {
		js.servedRing = append(js.servedRing[:0], js.servedRing[js.servedHead:]...)
		js.servedHead = 0
	}
}

// RemoveJob tears a job down (control plane). Outstanding blocks are
// discarded.
func (a *Aggregator) RemoveJob(jobID uint8) {
	js := a.jobs[jobID]
	if js == nil {
		return
	}
	a.pfe.Hash.Delete(0, Key(jobID, JobBlockID))
	for key := range js.bufOf {
		a.pfe.Hash.Delete(0, key)
	}
	delete(a.jobs, jobID)
}

// Process implements pfe.App: the Fig. 10 workflow.
func (a *Aggregator) Process(ctx *pfe.Ctx) {
	ctx.ChargeInstr(instrPacketOverhead)
	f := &a.frame
	if err := packet.DecodeInto(f, ctx.Head()); err != nil || !f.IsTrioML() {
		a.stats.NonAggPkts++
		if a.Fallback != nil {
			a.Fallback.Process(ctx)
			return
		}
		ctx.Drop()
		return
	}
	h := f.ML
	if h.SrcID == ResultSrcID {
		a.distribute(ctx, h)
		return
	}
	a.stats.Packets++

	js := a.jobs[h.JobID]
	blockKey := Key(h.JobID, h.BlockID)

	// Lookup block record (job_id, block_id).
	recAddr, found := ctx.HashLookup(blockKey)
	var rec BlockRecord
	creating := false
	if found {
		ctx.MemReadInto(recAddr, a.rec[:])
		rec = decodeBlock(a.rec[:])
		switch {
		case h.GenID == rec.GenID && maskBit(&rec.RcvdMask, h.SrcID):
			// A retransmitted duplicate is not forward progress: undo the
			// REF the lookup just took, or periodic retransmission from a
			// source missing its Result would keep refreshing the record
			// and livelock the §5 aging that is supposed to release it.
			a.stats.Duplicates++
			ctx.HashClearRef(blockKey)
			ctx.Drop()
			return
		case h.GenID != rec.GenID && genOlder(h.GenID, rec.GenID):
			// A straggler's contribution to an iteration that already aged
			// out and was superseded.
			a.stats.StaleDrops++
			ctx.Drop()
			return
		case h.GenID != rec.GenID:
			// The block id is being reused by a newer iteration: restart
			// the record in place; the first source's writes (below)
			// overwrite the stale buffer.
			rec.GenID = h.GenID
			rec.RcvdCnt = 0
			rec.RcvdMask = [4]uint64{}
			rec.AggAgeOp = 0
			rec.GradCnt = h.GradCnt
			rec.BlockStartTime = ctx.Now()
			creating = true
		}
	} else {
		// Block not found: a contribution for an already-served block is a
		// retransmit whose Result got lost — replay the cached frame (when
		// the cache is on) instead of recreating a one-source record.
		if js != nil && js.served != nil {
			if sr := js.served[blockKey]; sr != nil {
				switch {
				case h.GenID == sr.genID:
					a.replayResult(ctx, js, sr)
					return
				case genOlder(h.GenID, sr.genID):
					a.stats.StaleDrops++
					ctx.Drop()
					return
				default:
					// A newer generation reuses the block id; the cached
					// result is dead.
					delete(js.served, blockKey)
				}
			}
		}
		// Consult the job record (job_id, -1).
		jobAddr, ok := ctx.HashLookup(Key(h.JobID, JobBlockID))
		if !ok || js == nil {
			a.stats.NoJobDrops++
			ctx.Drop()
			return
		}
		ctx.MemReadInto(jobAddr, a.rec[:])
		job := decodeJob(a.rec[:])
		if !maskBit(&job.SrcMask, h.SrcID) || int(h.GradCnt) > int(job.BlockGradMax) || h.GradCnt == 0 {
			a.stats.NonAggPkts++
			ctx.Drop()
			return
		}
		if int(job.BlockCurrCnt) >= int(job.BlockCntMax) || len(js.freeBufs) == 0 {
			a.stats.NoBufferDrops++
			ctx.Drop()
			return
		}
		ctx.ChargeInstr(instrBlockCreate)
		recAddr = js.freeRecs[len(js.freeRecs)-1]
		js.freeRecs = js.freeRecs[:len(js.freeRecs)-1]
		bufAddr := js.freeBufs[len(js.freeBufs)-1]
		js.freeBufs = js.freeBufs[:len(js.freeBufs)-1]
		js.bufOf[blockKey] = bufAddr
		rec = BlockRecord{
			BlockExpMs:     job.BlockExpMs,
			BlockStartTime: ctx.Now(),
			JobCtxPAddr:    uint32(jobAddr),
			AggrPAddr:      uint32(bufAddr),
			GradCnt:        h.GradCnt,
			GenID:          h.GenID,
		}
		ctx.HashInsert(blockKey, recAddr)
		// Job bookkeeping: one in-memory update, asynchronous.
		job.BlockCurrCnt++
		job.BlockTotalCnt++
		a.writeJob(ctx, jobAddr, job)
		creating = true
		a.stats.BlocksCreated++
	}

	if int(h.GradCnt) != int(rec.GradCnt) {
		// All sources of a block must agree on its size.
		a.stats.NonAggPkts++
		ctx.Drop()
		return
	}

	// Straggler provenance: a lower-level aggregator's partial carries the
	// age_op of the level that timed out; the block remembers the highest
	// so the result it eventually emits preserves where in the tree the
	// degradation originated.
	if h.AgeOp > rec.AggAgeOp {
		rec.AggAgeOp = h.AgeOp
	}

	// Aggregate this packet's gradients into the block buffer: phase one
	// from the head, phase two looping over 64-byte tail chunks (Fig. 10).
	firstSource := rec.RcvdCnt == 0 && creating
	a.aggregateGradients(ctx, f, h, uint64(rec.AggrPAddr), firstSource)

	setMaskBit(&rec.RcvdMask, h.SrcID)
	rec.RcvdCnt++
	a.stats.GradsAggregated += uint64(h.GradCnt)

	// Completeness check against the job record's source count.
	ctx.MemReadInto(uint64(rec.JobCtxPAddr), a.rec[:])
	job := decodeJob(a.rec[:])
	if rec.RcvdCnt >= job.SrcCnt {
		a.finishBlock(ctx, js, blockKey, recAddr, rec, job, false)
	} else {
		a.writeBlock(ctx, recAddr, rec)
	}
	ctx.Consume()
	if a.OnAggregated != nil {
		a.OnAggregated(ctx.Packet().Arrival, ctx.Now(), int(h.GradCnt))
	}
}

// genOlder reports whether a precedes b in modular 16-bit generation order.
func genOlder(a, b uint16) bool { return int16(a-b) < 0 }

// gradStream is the streaming state of aggregateGradients. It lives on the
// Aggregator so the batch and staging buffers are reused across packets —
// the tail-aggregation loop runs per packet and must not allocate.
type gradStream struct {
	ctx        *pfe.Ctx
	bufAddr    uint64
	first      bool
	totalGrads int
	gradIdx    int
	batch      []int32 // always backed by batchBuf
	batchBuf   [chunkGrads]int32
	carry      [4]byte // partial gradient straddling head/tail or chunk edges
	carryLen   int
	wbuf       [4*chunkGrads + 8]byte // first-source write staging
}

func (g *gradStream) push(v int32) {
	g.batch = append(g.batch, v)
	g.gradIdx++
	if len(g.batch) == chunkGrads {
		g.ctx.ChargeInstr(instrPerChunk)
		g.flush()
	}
}

func (g *gradStream) flush() {
	if len(g.batch) == 0 {
		return
	}
	addr := g.bufAddr + uint64(4*(g.gradIdx-len(g.batch)))
	if g.first {
		n := 4 * len(g.batch)
		packet.PutGradients(g.wbuf[:n], g.batch)
		// Pad to the 8-byte transaction grain.
		for ; n%8 != 0; n++ {
			g.wbuf[n] = 0
		}
		g.ctx.MemWrite(addr, g.wbuf[:n], true)
	} else {
		g.ctx.AddVector32(addr, g.batch)
	}
	g.batch = g.batch[:0]
}

func (g *gradStream) consume(b []byte) {
	if g.carryLen > 0 {
		n := copy(g.carry[g.carryLen:], b)
		g.carryLen += n
		b = b[n:]
		if g.carryLen < 4 {
			return
		}
		g.carryLen = 0
		if g.gradIdx < g.totalGrads {
			g.push(int32(binary.BigEndian.Uint32(g.carry[:])))
		}
	}
	for len(b) >= 4 && g.gradIdx < g.totalGrads {
		g.push(int32(binary.BigEndian.Uint32(b)))
		b = b[4:]
	}
	if len(b) > 0 {
		g.carryLen = copy(g.carry[:], b)
	}
}

// aggregateGradients streams the packet's gradient bytes — head first, then
// the tail in 64-byte chunks — and issues one RMW engine vector op per
// 16-gradient batch. The first source of a block writes (initializing the
// buffer); later sources add.
func (a *Aggregator) aggregateGradients(ctx *pfe.Ctx, f *packet.Frame, h *packet.TrioML, bufAddr uint64, firstSource bool) {
	hdrLen := packet.EthernetLen + f.IP.HeaderLen() + packet.UDPLen + packet.TrioMLHeaderLen
	head := ctx.Head()

	g := &a.gs
	g.ctx = ctx
	g.bufAddr = bufAddr
	g.first = firstSource
	g.totalGrads = int(h.GradCnt)
	g.gradIdx = 0
	g.batch = g.batchBuf[:0]
	g.carryLen = 0

	if hdrLen < len(head) {
		g.consume(head[hdrLen:])
	}
	// Phase two: tail loop, 64 bytes per XTXN.
	for off := 0; off < ctx.TailLen() && g.gradIdx < g.totalGrads; off += 64 {
		g.consume(ctx.ReadTail(off, 64))
	}
	if len(g.batch) > 0 {
		ctx.ChargeInstr(instrPerChunk * len(g.batch) / chunkGrads)
		g.flush()
	}
	g.ctx = nil
}

// finishBlock generates the Result packet, recycles the block's resources,
// and updates the job record. Degraded results carry the straggler
// signalling fields of §5.
func (a *Aggregator) finishBlock(ctx *pfe.Ctx, js *jobState, blockKey uint64, recAddr uint64, rec BlockRecord, job JobRecord, degraded bool) {
	// Result-build loop: pull 256-byte chunks from the aggregation buffer
	// and write them to the Packet Buffer (Fig. 10).
	grads := a.res[:0]
	for off := 0; off < int(rec.GradCnt); off += resultChunkGrads {
		n := int(rec.GradCnt) - off
		if n > resultChunkGrads {
			n = resultChunkGrads
		}
		ctx.ChargeInstr(instrPerResultChunk)
		grads = ctx.ReadVector32Append(uint64(rec.AggrPAddr)+uint64(4*off), n, grads)
	}
	a.res = grads
	ctx.ChargeInstr(instrResultHeader)

	// Compose the degradation provenance: aging HERE stamps this
	// aggregator's level code; a block whose contributions were already
	// partial (a lower level aged) keeps the highest level seen. Either
	// way the result is marked degraded so receivers know the sum is not
	// the full fan-in, exactly as in the flat §5 protocol when
	// LevelCode is unset.
	ageOp := rec.AggAgeOp
	if degraded {
		lc := a.LevelCode
		if lc == 0 {
			lc = 1
		}
		if lc > ageOp {
			ageOp = lc
		}
	}
	_, blockID := SplitKey(blockKey)
	hdr := packet.TrioML{
		JobID:    js.cfg.JobID,
		BlockID:  blockID,
		GenID:    rec.GenID,
		SrcCnt:   rec.RcvdCnt,
		GradCnt:  rec.GradCnt,
		Degraded: degraded || ageOp > 0,
		AgeOp:    ageOp,
	}
	spec := js.cfg.ResultSpec
	var frame []byte
	if js.cfg.UpstreamPort >= 0 {
		// Hierarchical first level: contribute upward as one source.
		hdr.SrcID = js.cfg.UpstreamSrcID
		frame = packet.BuildTrioML(spec, hdr, grads)
		ctx.Emit(js.cfg.UpstreamPort, frame)
	} else {
		hdr.SrcID = ResultSrcID
		frame = packet.BuildTrioML(spec, hdr, grads)
		for _, p := range js.cfg.ResultPorts {
			ctx.Emit(p, frame)
		}
	}
	if js.served != nil {
		js.cacheServed(blockKey, rec.GenID, frame)
	}
	a.stats.ResultsEmitted++
	if degraded {
		a.stats.BlocksDegraded++
	} else {
		a.stats.BlocksCompleted++
	}
	if a.OnResult != nil {
		a.OnResult(hdr, ctx.Now())
	}

	// Recycle: delete the record, free the buffer, update the job.
	ctx.HashDelete(blockKey)
	js.freeRecs = append(js.freeRecs, recAddr)
	if buf, ok := js.bufOf[blockKey]; ok {
		js.freeBufs = append(js.freeBufs, buf)
		delete(js.bufOf, blockKey)
	}
	if job.BlockCurrCnt > 0 {
		job.BlockCurrCnt--
	}
	a.writeJob(ctx, uint64(rec.JobCtxPAddr), job)
}

// replayResult re-emits a cached Result frame for a retransmitted
// contribution to an already-served block. The replayed bytes are the exact
// frame the block's completion emitted, so every source converges on
// identical sums no matter how many Result deliveries were lost.
func (a *Aggregator) replayResult(ctx *pfe.Ctx, js *jobState, sr *servedResult) {
	ctx.ChargeInstr(instrResultHeader)
	if js.cfg.UpstreamPort >= 0 {
		ctx.Emit(js.cfg.UpstreamPort, sr.frame)
	} else {
		for _, p := range js.cfg.ResultPorts {
			ctx.Emit(p, sr.frame)
		}
	}
	a.stats.ResultReplays++
	ctx.Consume()
}

// distribute re-multicasts a Result packet arriving from an upper-level
// aggregator to this PFE's local workers.
func (a *Aggregator) distribute(ctx *pfe.Ctx, h *packet.TrioML) {
	js := a.jobs[h.JobID]
	if js == nil || len(js.cfg.DistributePorts) == 0 {
		a.stats.NonAggPkts++
		ctx.Drop()
		return
	}
	ctx.ChargeInstr(4)
	frame := ctx.FullFrame()
	for _, p := range js.cfg.DistributePorts {
		ctx.Emit(p, frame)
	}
	a.stats.Distributed++
	ctx.Consume()
}

// writeBlock persists a block record (asynchronous 64-byte write-back).
// The shared staging buffer is cleared first so padding bits stay zero,
// exactly as with a fresh allocation.
func (a *Aggregator) writeBlock(ctx *pfe.Ctx, addr uint64, rec BlockRecord) {
	b := a.rec[:]
	clear(b)
	rec.encode(b)
	ctx.MemWrite(addr, b, true)
}

// writeJob persists a job record.
func (a *Aggregator) writeJob(ctx *pfe.Ctx, addr uint64, job JobRecord) {
	b := a.rec[:]
	clear(b)
	job.encode(b)
	ctx.MemWrite(addr, b, true)
}

var _ pfe.App = (*Aggregator)(nil)
