package trioml

import (
	"fmt"
	"strings"

	"github.com/trioml/triogo/internal/microcode"
	"github.com/trioml/triogo/internal/trio/pfe"
	"github.com/trioml/triogo/internal/trio/smem"
)

// This file carries a complete in-network aggregation data path written in
// Microcode itself — the §3/§4 programming model end to end: parse the
// Trio-ML header out of thread-local memory, claim a block record in shared
// memory, deduplicate sources with a bitmask, aggregate gradients chunk by
// chunk (head gradients directly from local memory, tail gradients through
// 64-byte tail-read XTXNs with the head/tail straddle staged around a
// 2-byte phase offset — the loop of Fig. 10), and, on the final
// contribution, rewrite that packet into the Result: sums copied back into
// the head and written to the Packet Buffer tail in the result-build loop.
//
// Scope relative to the production path (Aggregator): one job, a static
// record/buffer pool indexed by block & mask instead of the hash engine,
// and a single forwarded Result instead of multicast. The production
// semantics live in the native Aggregator; this program demonstrates that
// the ISA suffices for the paper's application at the instruction count
// §6.3 reports (≈60 static instructions; this assembles to 53 at Unroll=1
// including the result-build loop).

// MCAggGrads is the default gradients-per-packet of the Microcode
// aggregator.
const MCAggGrads = 16

// Packet geometry the program is compiled against: gradients start at byte
// 54 (Ethernet 14 + IPv4 20 + UDP 8 + Trio-ML 12) and the head holds the
// first 192 bytes, so gradient chunk 2 straddles the head/tail boundary
// with a constant 2-byte phase.
const (
	mcGradOff  = 54
	mcHeadLen  = 192
	mcStage    = 320 // 64-byte staging window for straddle/tail chunks
	mcBufStage = 448 // 64-byte staging window for buffer chunks
	mcRecStage = 256 // 24-byte record staging
)

// MCAggConfig parameterizes the Microcode aggregation program.
type MCAggConfig struct {
	Sources int // contributors per block (≥ 2)
	Slots   int // record/buffer pool size, power of two
	Grads   int // gradients per packet: multiple of 16, 16..1024; default MCAggGrads
	// Unroll replicates the gradient-add body so each loop-control
	// instruction pays for Unroll gradients: 1 (default), 2, 4, 8, or 16.
	// Higher unroll trades static instructions for fewer run-time
	// instructions per gradient — the axis progdse explores.
	Unroll int
}

// withDefaults fills zero-valued knobs.
func (cfg MCAggConfig) withDefaults() MCAggConfig {
	if cfg.Grads == 0 {
		cfg.Grads = MCAggGrads
	}
	if cfg.Unroll == 0 {
		cfg.Unroll = 1
	}
	return cfg
}

// check validates a defaulted configuration.
func (cfg MCAggConfig) check() error {
	if cfg.Sources < 2 || cfg.Sources > 63 {
		return fmt.Errorf("trioml: mcagg needs 2..63 sources, got %d", cfg.Sources)
	}
	if cfg.Slots <= 0 || cfg.Slots&(cfg.Slots-1) != 0 {
		return fmt.Errorf("trioml: mcagg slots must be a power of two, got %d", cfg.Slots)
	}
	if cfg.Grads%16 != 0 || cfg.Grads < 16 || cfg.Grads > 1024 {
		return fmt.Errorf("trioml: mcagg gradients must be a multiple of 16 in 16..1024, got %d", cfg.Grads)
	}
	switch cfg.Unroll {
	case 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("trioml: mcagg unroll must be 1, 2, 4, 8 or 16, got %d", cfg.Unroll)
	}
	return nil
}

// MCAgg is an installed Microcode aggregator.
type MCAgg struct {
	App     *pfe.MicrocodeApp
	Program *microcode.Program
	RecBase uint64
	BufBase uint64
	cfg     MCAggConfig
}

// mcaggSource generates the program text for a configuration.
func mcaggSource(cfg MCAggConfig, recBase, bufBase uint64) string {
	return fmt.Sprintf(`
program mcagg;

define NSRC        = %d;
define SLOT_MASK   = %d;
define REC_BASE    = %d;
define BUF_BASE    = %d;
define BLOCK_BYTES = %d;
define NCHUNKS_M1  = %d;   // chunks per block - 1

reg block = r2;
reg src   = r3;
reg slot  = r4;
reg rec   = r5;
reg buf   = r6;   // walks the block's aggregation buffer chunk by chunk
reg tag   = r7;
reg bit   = r10;
reg ptr_s = r11;  // source pointer (packet gradients)
reg ptr_b = r12;  // destination pointer (staged buffer chunk)
reg lane  = r13;
reg tmp   = r14;
reg k     = r15;  // chunk index
reg toff  = r16;  // tail byte offset of the current chunk
reg first = r17;  // 1 when this thread is the block's first contributor

// trio_ml_hdr_t sits at byte 42: block_id at 43, src_id at 48, src_cnt at
// 49; gradients start at byte 54.

parse:
begin
    block = lmem32[43];
    src   = lmem8[48];
    goto calc_slot;
end

calc_slot:
begin
    slot = block & SLOT_MASK;
    tag  = block + 1;
    goto calc_rec;
end

calc_rec:
begin
    rec = REC_BASE + slot * 64;
    goto calc_buf;
end

calc_buf:
begin
    buf = BUF_BASE + slot * BLOCK_BYTES;
    goto load_rec;
end

// Record: word0 tag, word1 source bitmask, word2 contribution count.
load_rec:
begin
    mem_read(rec, 24, 256);
    goto check_rec;
end

check_rec:
begin
    tmp = lmem64[256];
    goto check_rec2;
end

check_rec2:
begin
    if (tmp == tag) { goto dedup; }
    goto init_rec;
end

init_rec:
begin
    lmem64[256] = tag;
    lmem64[264] = 0;
    goto init_rec2;
end

init_rec2:
begin
    lmem64[272] = 0;
    goto dedup;
end

dedup:
begin
    bit = 1 << src;
    tmp = lmem64[264] & bit;       // cascaded: bit feeds the second ALU
    goto dedup2;
end

dedup2:
begin
    if (tmp != 0) { exit(drop); }  // retransmission
    goto mark;
end

mark:
begin
    lmem64[264] = lmem64[264] | bit;
    lmem64[272] = lmem64[272] + 1;
    goto mark2;
end

mark2:
begin
    tmp   = lmem64[272];
    first = 0;
    goto branch_first;
end

branch_first:
begin
    if (tmp == 1) { goto set_first; }
    goto chunk_init;
end

set_first:
begin
    first = 1;
    goto chunk_init;
end

// ---- gradient chunk loop (Fig. 10): 16 gradients (64 bytes) per pass ----

chunk_init:
begin
    k = 0;
    goto chunk_top;
end

// One multi-way branch resolves where this chunk's bytes live: chunks 0 and
// 1 sit in the head; chunk 2 straddles the head/tail boundary; the rest are
// pure tail.
chunk_top:
begin
    if (k == 0) { goto src_h0; }
    if (k == 1) { goto src_h1; }
    if (k == 2) { goto src_strad; }
    goto src_tail;
end

src_h0:
begin
    ptr_s = 54;
    if (first == 1) { goto wr54; }
    goto add_init;
end

src_h1:
begin
    ptr_s = 118;
    if (first == 1) { goto wr118; }
    goto add_init;
end

// Straddle: 10 head bytes (182..192) staged ahead of a 54-byte tail read.
src_strad:
begin
    lmem64[320] = lmem64[182];
    lmem16[328] = lmem16[190];
    goto src_strad2;
end

src_strad2:
begin
    tail_read(0, 54, 330);
    ptr_s = 320;
    if (first == 1) { goto wr320; }
    goto add_init;
end

src_tail:
begin
    toff = k * 64 - 138;           // constant 2-byte phase offset
    goto src_tail2;
end

src_tail2:
begin
    tail_read(toff, 64, 320);
    ptr_s = 320;
    if (first == 1) { goto wr320; }
    goto add_init;
end

// First contributor initializes the buffer chunk by writing its gradients
// straight from wherever they sit — no separate zeroing pass.
wr54:
begin
    mem_write(buf, 64, 54);
    goto chunk_next;
end

wr118:
begin
    mem_write(buf, 64, 118);
    goto chunk_next;
end

wr320:
begin
    mem_write(buf, 64, 320);
    goto chunk_next;
end

// Later contributors read-modify-write the chunk through staging. The
// mem_read's address operand is read in the XTXN phase after the moves,
// but the moves leave buf alone, so staging setup rides along for free.
add_init:
begin
    mem_read(buf, 64, 448);
    ptr_b = 448;
    lane  = 16;
    goto add_loop;
end

%s
add_wb:
begin
    mem_write(buf, 64, 448);
    goto chunk_next;
end

chunk_next:
begin
    k   = k + 1;
    buf = buf + 64;
    if (k != NCHUNKS_M1) { goto chunk_top; }
    goto write_rec;
end

// ---- completion ----

write_rec:
begin
    async mem_write(rec, 24, 256);
    tmp = lmem64[272];
    goto complete_check;
end

complete_check:
begin
    if (tmp == NSRC) { goto res_init; }
    exit(consume);
end

// ---- result-build loop (Fig. 10): pull chunks from the aggregation
// buffer, write them into this packet's head and Packet Buffer tail ----

res_init:
begin
    buf = BUF_BASE + slot * BLOCK_BYTES;
    goto res_init2;
end

res_init2:
begin
    k = 0;
    goto res_top;
end

res_top:
begin
    mem_read(buf, 64, 448);
    goto res_sel;
end

res_sel:
begin
    if (k == 0) { goto res_h0a; }
    if (k == 1) { goto res_h1a; }
    if (k == 2) { goto res_strad; }
    goto res_tail;
end

res_h0a:
begin
    lmem64[54] = lmem64[448];
    lmem64[62] = lmem64[456];
    goto res_h0b;
end

res_h0b:
begin
    lmem64[70] = lmem64[464];
    lmem64[78] = lmem64[472];
    goto res_h0c;
end

res_h0c:
begin
    lmem64[86] = lmem64[480];
    lmem64[94] = lmem64[488];
    goto res_h0d;
end

res_h0d:
begin
    lmem64[102] = lmem64[496];
    lmem64[110] = lmem64[504];
    goto res_next;
end

res_h1a:
begin
    lmem64[118] = lmem64[448];
    lmem64[126] = lmem64[456];
    goto res_h1b;
end

res_h1b:
begin
    lmem64[134] = lmem64[464];
    lmem64[142] = lmem64[472];
    goto res_h1c;
end

res_h1c:
begin
    lmem64[150] = lmem64[480];
    lmem64[158] = lmem64[488];
    goto res_h1d;
end

res_h1d:
begin
    lmem64[166] = lmem64[496];
    lmem64[174] = lmem64[504];
    goto res_next;
end

res_strad:
begin
    lmem64[182] = lmem64[448];
    lmem16[190] = lmem16[456];
    goto res_strad2;
end

res_strad2:
begin
    tail_write(0, 54, 458);
    goto res_next;
end

res_tail:
begin
    toff = k * 64 - 138;
    goto res_tail2;
end

res_tail2:
begin
    tail_write(toff, 64, 448);
    goto res_next;
end

res_next:
begin
    k   = k + 1;
    buf = buf + 64;
    if (k != NCHUNKS_M1) { goto res_top; }
    goto free_slot;
end

free_slot:
begin
    lmem64[256] = 0;
    goto free_slot2;
end

free_slot2:
begin
    async mem_write(rec, 8, 256);
    goto set_hdr;
end

set_hdr:
begin
    lmem8[48] = 0xFF;      // src_id = Result marker
    lmem8[49] = NSRC;      // src_cnt
    exit(forward);
end
`, cfg.Sources, cfg.Slots-1, recBase, bufBase, 4*cfg.Grads, cfg.Grads/16-1,
		mcaggAddLoop(cfg.Unroll))
}

// mcaggAddLoop renders the gradient-add loop body unrolled u ways. Each
// body instruction is one fused 32-bit read-modify-write on the staged
// chunk; the last body instruction also advances the source pointer, and
// one control instruction per pass retires u lanes. Conditions read
// pre-decrement state, so "lane != u" continues exactly while passes
// remain; u = 1 reproduces the classic two-instruction loop.
func mcaggAddLoop(u int) string {
	var b strings.Builder
	for j := 0; j < u; j++ {
		label := "add_loop"
		if j > 0 {
			label = fmt.Sprintf("add_u%d", j)
		}
		next := "add_ctl"
		if j < u-1 {
			next = fmt.Sprintf("add_u%d", j+1)
		}
		fmt.Fprintf(&b, "%s:\nbegin\n", label)
		if j == 0 {
			b.WriteString("    lmem32[ptr_b] = lmem32[ptr_b] + lmem32[ptr_s];\n")
		} else {
			fmt.Fprintf(&b, "    lmem32[ptr_b + %d] = lmem32[ptr_b + %d] + lmem32[ptr_s + %d];\n", 4*j, 4*j, 4*j)
		}
		if j == u-1 {
			fmt.Fprintf(&b, "    ptr_s = ptr_s + %d;\n", 4*u)
		}
		fmt.Fprintf(&b, "    goto %s;\nend\n\n", next)
	}
	fmt.Fprintf(&b, "add_ctl:\nbegin\n    lane  = lane - %d;\n    ptr_b = ptr_b + %d;\n    if (lane != %d) { goto add_loop; }\n    goto add_wb;\nend\n", u, 4*u, u)
	return b.String()
}

// MCAggProgram assembles the Microcode aggregation program for cfg against
// the given record/buffer pool bases. Exported so the dispatch benchmark
// and program-level DSE can build variants without provisioning a PFE.
func MCAggProgram(cfg MCAggConfig, recBase, bufBase uint64) (*microcode.Program, error) {
	cfg = cfg.withDefaults()
	if err := cfg.check(); err != nil {
		return nil, err
	}
	prog, err := microcode.Assemble(mcaggSource(cfg, recBase, bufBase))
	if err != nil {
		return nil, fmt.Errorf("trioml: assembling mcagg: %w", err)
	}
	return prog, nil
}

// InstallMCAgg provisions the record and buffer pools in p's shared memory,
// assembles the Microcode aggregation program for cfg, compiles it through
// the v2 verify/compile pipeline, and installs it as p's application.
// Results egress on egressPort.
func InstallMCAgg(p *pfe.PFE, cfg MCAggConfig, egressPort int) (*MCAgg, error) {
	cfg = cfg.withDefaults()
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if p.Cfg.HeadBytes != mcHeadLen {
		return nil, fmt.Errorf("trioml: mcagg is compiled for %d-byte heads, PFE uses %d", mcHeadLen, p.Cfg.HeadBytes)
	}
	recBase := p.Mem.Alloc(smem.TierSRAM, uint64(cfg.Slots)*64)
	bufBase := p.Mem.Alloc(smem.TierDRAM, uint64(cfg.Slots)*4*uint64(cfg.Grads))
	prog, err := MCAggProgram(cfg, recBase, bufBase)
	if err != nil {
		return nil, err
	}
	app := &pfe.MicrocodeApp{Program: prog, Entry: "parse", EgressPort: egressPort}
	if err := app.Compile(); err != nil {
		return nil, fmt.Errorf("trioml: compiling mcagg: %w", err)
	}
	p.SetApp(app)
	return &MCAgg{App: app, Program: prog, RecBase: recBase, BufBase: bufBase, cfg: cfg}, nil
}
