package trioml

import (
	"reflect"
	"testing"

	"github.com/trioml/triogo/internal/packet"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/pfe"
)

// mcaggRig installs mcagg with an arbitrary configuration and collects
// decoded results (mcaggSetup pins the default config; these tests sweep
// Grads and Unroll).
func mcaggRig(t *testing.T, cfg MCAggConfig) (*sim.Engine, *pfe.PFE, *MCAgg, *[]result) {
	t.Helper()
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	p := pfe.New(eng, RecommendedPFEConfig())
	agg, err := InstallMCAgg(p, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	results := &[]result{}
	p.SetOutput(func(port int, frame []byte, at sim.Time) {
		f, err := packet.Decode(frame)
		if err != nil || !f.IsTrioML() {
			t.Errorf("bad result frame: %v", err)
			return
		}
		grads, err := packet.Gradients(f.Payload, cfg.Grads)
		if err != nil {
			t.Errorf("bad gradients: %v", err)
			return
		}
		*results = append(*results, result{port: port, hdr: *f.ML, grads: grads, at: at})
	})
	return eng, p, agg, results
}

func mcaggInjectBlock(p *pfe.PFE, eng *sim.Engine, cfg MCAggConfig, block uint32) []uint64 {
	perPacket := make([]uint64, cfg.Sources)
	for w := 0; w < cfg.Sources; w++ {
		g := make([]int32, cfg.Grads)
		for i := range g {
			g[i] = int32((w*31+i*7)%997 - 498)
		}
		before := p.Stats().Instructions
		p.Inject(w%p.Cfg.NumPorts, uint64(w), mcaggPkt(w, block, g))
		eng.Run()
		perPacket[w] = p.Stats().Instructions - before
	}
	return perPacket
}

// The analytic cost model must predict measured Thread.Stats exactly for
// every contributor role, across gradient counts and unroll factors —
// that is what licenses progdse to prune on it without simulating.
func TestMCAggCostModelMatchesMeasured(t *testing.T) {
	for _, cfg := range []MCAggConfig{
		{Sources: 3, Slots: 16},
		{Sources: 3, Slots: 16, Grads: 64, Unroll: 2},
		{Sources: 3, Slots: 16, Grads: 256, Unroll: 4},
		{Sources: 4, Slots: 16, Grads: 1024, Unroll: 16},
	} {
		cfg = cfg.withDefaults()
		eng, p, agg, results := mcaggRig(t, cfg)
		cost := cfg.Cost()
		if agg.Program.Len() != cost.StaticInstructions {
			t.Fatalf("%+v: static = %d, model says %d", cfg, agg.Program.Len(), cost.StaticInstructions)
		}
		per := mcaggInjectBlock(p, eng, cfg, 1)
		if len(*results) != 1 {
			t.Fatalf("%+v: results = %d", cfg, len(*results))
		}
		if per[0] != uint64(cost.InstrFirstPacket) {
			t.Errorf("%+v: first packet = %d instrs, model says %d", cfg, per[0], cost.InstrFirstPacket)
		}
		for w := 1; w < cfg.Sources-1; w++ {
			if per[w] != uint64(cost.InstrOtherPacket) {
				t.Errorf("%+v: middle packet = %d instrs, model says %d", cfg, per[w], cost.InstrOtherPacket)
			}
		}
		if per[cfg.Sources-1] != uint64(cost.InstrFinalPacket) {
			t.Errorf("%+v: final packet = %d instrs, model says %d", cfg, per[cfg.Sources-1], cost.InstrFinalPacket)
		}
	}
}

// §6.3 conformance: at full fan-in and unroll, the aggregation data path
// retires ≈1.2 run-time instructions per gradient contribution, measured
// from Thread.Stats through the compiled dispatcher.
func TestMCAggInstrPerGradientNearPaper(t *testing.T) {
	cfg := MCAggConfig{Sources: 6, Slots: 16, Grads: 1024, Unroll: 16}
	eng, p, _, results := mcaggRig(t, cfg)
	per := mcaggInjectBlock(p, eng, cfg, 2)
	if len(*results) != 1 {
		t.Fatalf("results = %d", len(*results))
	}
	var total uint64
	for _, n := range per {
		total += n
	}
	measured := float64(total) / float64(cfg.Sources*cfg.Grads)
	if got := cfg.Cost().InstrPerGrad; got != measured {
		t.Fatalf("model says %.3f instr/grad, measured %.3f", got, measured)
	}
	if measured < 1.0 || measured > 1.45 {
		t.Fatalf("instr/gradient = %.3f, want ≈1.2 (§6.3 band 1.0..1.45)", measured)
	}
	t.Logf("instr/gradient = %.3f", measured)
}

// Compiled dispatch must be bit-identical to the reference interpreter on
// the real aggregation workload: same results, same timestamps, same
// thread statistics.
func TestMCAggCompiledMatchesInterpreter(t *testing.T) {
	cfg := MCAggConfig{Sources: 3, Slots: 16, Grads: 1024, Unroll: 4}
	engC, pC, aggC, resC := mcaggRig(t, cfg)
	engI, pI, aggI, resI := mcaggRig(t, cfg)
	aggI.App.Interpret = true
	mcaggInjectBlock(pC, engC, cfg, 3)
	mcaggInjectBlock(pI, engI, cfg, 3)
	if aggC.App.Errors != 0 || aggI.App.Errors != 0 {
		t.Fatalf("errors: compiled %d, interpreter %d", aggC.App.Errors, aggI.App.Errors)
	}
	if !reflect.DeepEqual(*resC, *resI) {
		t.Fatalf("results diverge:\ncompiled:    %+v\ninterpreter: %+v", *resC, *resI)
	}
	if pC.Stats() != pI.Stats() {
		t.Fatalf("stats diverge:\ncompiled:    %+v\ninterpreter: %+v", pC.Stats(), pI.Stats())
	}
	if engC.Now() != engI.Now() {
		t.Fatalf("virtual clocks diverge: compiled %v, interpreter %v", engC.Now(), engI.Now())
	}
}

// Every unroll factor computes the same sums; deeper unroll strictly
// reduces run-time instructions.
func TestMCAggUnrollVariantsAgree(t *testing.T) {
	var base []result
	var prevInstr uint64
	for _, u := range []int{1, 2, 4, 8, 16} {
		cfg := MCAggConfig{Sources: 3, Slots: 16, Grads: 256, Unroll: u}
		eng, p, agg, results := mcaggRig(t, cfg)
		mcaggInjectBlock(p, eng, cfg, 4)
		if agg.App.Errors != 0 {
			t.Fatalf("unroll %d: microcode errors: %d (%v)", u, agg.App.Errors, agg.App.LastError)
		}
		if len(*results) != 1 {
			t.Fatalf("unroll %d: results = %d", u, len(*results))
		}
		if u == 1 {
			base = *results
		} else if !reflect.DeepEqual((*results)[0].grads, base[0].grads) {
			t.Fatalf("unroll %d sums diverge from unroll 1", u)
		}
		instr := p.Stats().Instructions
		if u > 1 && instr >= prevInstr {
			t.Fatalf("unroll %d retired %d instrs, not fewer than previous %d", u, instr, prevInstr)
		}
		prevInstr = instr
	}
}
