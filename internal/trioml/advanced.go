package trioml

import (
	"fmt"

	"github.com/trioml/triogo/internal/packet"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/pfe"
	"github.com/trioml/triogo/internal/trio/smem"
)

// Advanced straggler mitigation (§5, final paragraph): alongside the
// frequent timer threads that age blocks out, a second, less frequent
// thread class analyzes per-source straggler-event counts to distinguish
// temporary stragglers (mitigated block by block) from permanent ones (out
// of service). A source classified permanent is demoted from the job — its
// bit is cleared from the job record's source mask and src_cnt drops — so
// subsequent blocks complete without waiting for it at all, and a
// notification packet tells the workers. This removes the per-block timeout
// penalty that a dead worker would otherwise impose on every iteration.

// NotifyDemoted is the age_op value of a demotion notification packet.
const NotifyDemoted = 2

// AdvancedConfig parameterizes the analysis threads.
type AdvancedConfig struct {
	// AnalyzePeriod is the slow thread's interval (default 100 ms —
	// "another type happens less frequently").
	AnalyzePeriod sim.Time
	// EventThreshold demotes a source once it has missed this many aged
	// blocks since the previous analysis (default 8).
	EventThreshold uint64
}

// advancedState tracks the per-job analysis bookkeeping.
type advancedState struct {
	cfg      AdvancedConfig
	evBase   map[uint8]uint64             // job -> event-counter slab (MaxSources × 16 B)
	snapshot map[uint8][MaxSources]uint64 // counts at the previous analysis
}

// StartAdvancedMitigation provisions per-source straggler-event counters for
// every installed job and launches the slow analysis thread. Call it after
// the jobs are installed and alongside StartStragglerDetection. It returns
// the thread's cancellable handle set.
func (a *Aggregator) StartAdvancedMitigation(cfg AdvancedConfig) *pfe.TimerThreads {
	if cfg.AnalyzePeriod == 0 {
		cfg.AnalyzePeriod = 100 * sim.Millisecond
	}
	if cfg.EventThreshold == 0 {
		cfg.EventThreshold = 8
	}
	st := &advancedState{
		cfg:      cfg,
		evBase:   make(map[uint8]uint64),
		snapshot: make(map[uint8][MaxSources]uint64),
	}
	for jobID := range a.jobs {
		st.evBase[jobID] = a.pfe.Mem.Alloc(smem.TierSRAM, MaxSources*16)
	}
	a.advanced = st
	return a.pfe.StartTimerThreads(1, cfg.AnalyzePeriod, func(ctx *pfe.Ctx, _ int) {
		a.analyze(ctx, st)
	})
}

// recordStragglerEvents charges one event per expected-but-missing source of
// an aged block (runs on the fast timer-thread path).
func (a *Aggregator) recordStragglerEvents(ctx *pfe.Ctx, jobID uint8, job JobRecord, rec BlockRecord) {
	if a.advanced == nil {
		return
	}
	base, ok := a.advanced.evBase[jobID]
	if !ok {
		return
	}
	for s := 0; s < MaxSources; s++ {
		if maskBit(&job.SrcMask, uint8(s)) && !maskBit(&rec.RcvdMask, uint8(s)) {
			ctx.CounterInc(base+uint64(s)*16, 1)
		}
	}
}

// analyze is the slow thread body: compare each source's event counter with
// the previous snapshot and demote sources past the threshold.
func (a *Aggregator) analyze(ctx *pfe.Ctx, st *advancedState) {
	ctx.ChargeInstr(20)
	for jobID, js := range a.jobs {
		base, ok := st.evBase[jobID]
		if !ok {
			continue
		}
		prev := st.snapshot[jobID]
		var cur [MaxSources]uint64
		for _, src := range js.cfg.Sources {
			events, _ := a.pfe.Mem.Counter(base + uint64(src)*16)
			cur[src] = events
			if js.demoted[src] {
				continue
			}
			if events-prev[src] >= st.cfg.EventThreshold {
				a.demoteSource(ctx, jobID, js, src)
			}
		}
		st.snapshot[jobID] = cur
	}
}

// demoteSource removes a permanent straggler from the job's source set and
// notifies the workers.
func (a *Aggregator) demoteSource(ctx *pfe.Ctx, jobID uint8, js *jobState, src uint8) {
	jobAddr, ok := ctx.HashLookup(Key(jobID, JobBlockID))
	if !ok {
		return
	}
	job := decodeJob(ctx.MemRead(jobAddr, recordTxnBytes))
	if !maskBit(&job.SrcMask, src) {
		return
	}
	job.SrcMask[src/64] &^= 1 << (src % 64)
	if job.SrcCnt > 0 {
		job.SrcCnt--
	}
	a.writeJob(ctx, jobAddr, job)
	if js.demoted == nil {
		js.demoted = map[uint8]bool{}
	}
	js.demoted[src] = true
	a.stats.SourcesDemoted++

	// Notify the workers (§5: "sends notification to all other workers").
	hdr := packet.TrioML{
		JobID: jobID, BlockID: JobBlockID - 1, AgeOp: NotifyDemoted,
		SrcID: ResultSrcID, SrcCnt: src,
	}
	frame := packet.BuildTrioML(js.cfg.ResultSpec, hdr, nil)
	ports := js.cfg.ResultPorts
	if js.cfg.UpstreamPort >= 0 {
		ports = js.cfg.DistributePorts
	}
	for _, p := range ports {
		ctx.Emit(p, frame)
	}
	if a.OnDemotion != nil {
		a.OnDemotion(jobID, src, ctx.Now())
	}
}

// ReinstateSource returns a previously demoted source to the job (control
// plane; e.g. after the server is repaired).
func (a *Aggregator) ReinstateSource(jobID, src uint8) error {
	js := a.jobs[jobID]
	if js == nil {
		return fmt.Errorf("trioml: no job %d", jobID)
	}
	if !js.demoted[src] {
		return fmt.Errorf("trioml: source %d of job %d is not demoted", src, jobID)
	}
	val, ok, _ := a.pfe.Hash.Lookup(0, Key(jobID, JobBlockID))
	if !ok {
		return fmt.Errorf("trioml: job %d record missing", jobID)
	}
	job := decodeJob(a.pfe.Mem.ReadRaw(val, recordTxnBytes))
	setMaskBit(&job.SrcMask, src)
	job.SrcCnt++
	b := make([]byte, recordTxnBytes)
	job.encode(b)
	a.pfe.Mem.WriteRaw(val, b)
	delete(js.demoted, src)
	return nil
}

// Demoted reports whether a source is currently demoted from a job.
func (a *Aggregator) Demoted(jobID, src uint8) bool {
	js := a.jobs[jobID]
	return js != nil && js.demoted[src]
}
