package trioml

import (
	"testing"

	"github.com/trioml/triogo/internal/packet"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/pfe"
)

type result struct {
	port  int
	hdr   packet.TrioML
	grads []int32
	at    sim.Time
}

type rig struct {
	eng     *sim.Engine
	pfe     *pfe.PFE
	agg     *Aggregator
	results []result
}

func newRig(t *testing.T, cfg JobConfig) *rig {
	t.Helper()
	eng := sim.NewEngine()
	p := pfe.New(eng, RecommendedPFEConfig())
	a := New(p)
	r := &rig{eng: eng, pfe: p, agg: a}
	p.SetOutput(func(port int, frame []byte, at sim.Time) {
		f, err := packet.Decode(frame)
		if err != nil || !f.IsTrioML() {
			t.Errorf("non-trioml egress frame: %v", err)
			return
		}
		grads, err := packet.Gradients(f.Payload, int(f.ML.GradCnt))
		if err != nil {
			t.Errorf("bad result gradients: %v", err)
			return
		}
		r.results = append(r.results, result{port: port, hdr: *f.ML, grads: grads, at: at})
	})
	if cfg.UpstreamPort == 0 {
		cfg.UpstreamPort = -1
	}
	if err := a.InstallJob(cfg); err != nil {
		t.Fatalf("install job: %v", err)
	}
	return r
}

func fourWorkerJob() JobConfig {
	return JobConfig{
		JobID:        1,
		Sources:      []uint8{0, 1, 2, 3},
		ResultPorts:  []int{0, 1, 2, 3},
		UpstreamPort: -1,
		ResultSpec: packet.UDPSpec{
			SrcIP: [4]byte{10, 0, 0, 100}, DstIP: [4]byte{224, 0, 1, 1}, SrcPort: packet.TrioMLPort,
		},
	}
}

func (r *rig) send(worker int, block uint32, gen uint16, grads []int32) {
	frame := packet.BuildTrioML(packet.UDPSpec{
		SrcIP: [4]byte{10, 0, 0, byte(worker + 1)}, DstIP: [4]byte{10, 0, 0, 100}, SrcPort: 6000,
	}, packet.TrioML{JobID: 1, BlockID: block, SrcID: uint8(worker), GenID: gen}, grads)
	r.pfe.Inject(worker%r.pfe.Cfg.NumPorts, uint64(worker)<<32|uint64(block), frame)
}

func seqGrads(n int, scale int32) []int32 {
	g := make([]int32, n)
	for i := range g {
		g[i] = scale * int32(i+1)
	}
	return g
}

func TestSingleLevelAggregation(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	for w := 0; w < 4; w++ {
		r.send(w, 5, 1, seqGrads(256, int32(w+1)))
	}
	r.eng.Run()
	// Multicast: one result per worker port.
	if len(r.results) != 4 {
		t.Fatalf("results = %d", len(r.results))
	}
	ports := map[int]bool{}
	for _, res := range r.results {
		ports[res.port] = true
		if res.hdr.BlockID != 5 || res.hdr.SrcCnt != 4 || res.hdr.Degraded {
			t.Fatalf("hdr = %+v", res.hdr)
		}
		if res.hdr.SrcID != ResultSrcID {
			t.Fatalf("result src_id = %d", res.hdr.SrcID)
		}
		for i, g := range res.grads {
			want := int32(10 * (i + 1)) // scales 1+2+3+4
			if g != want {
				t.Fatalf("gradient %d = %d, want %d", i, g, want)
			}
		}
	}
	if len(ports) != 4 {
		t.Fatalf("multicast reached ports %v", ports)
	}
	st := r.agg.Stats()
	if st.BlocksCreated != 1 || st.BlocksCompleted != 1 || st.Packets != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLargeBlockUsesTailPath(t *testing.T) {
	// 1024 gradients = 4 KB packets: most gradients live in the tail.
	r := newRig(t, fourWorkerJob())
	for w := 0; w < 4; w++ {
		r.send(w, 0, 1, seqGrads(1024, 1))
	}
	r.eng.Run()
	if len(r.results) != 4 {
		t.Fatalf("results = %d", len(r.results))
	}
	for i, g := range r.results[0].grads {
		if g != int32(4*(i+1)) {
			t.Fatalf("gradient %d = %d, want %d", i, g, 4*(i+1))
		}
	}
	if r.agg.Stats().GradsAggregated != 4096 {
		t.Fatalf("grads aggregated = %d", r.agg.Stats().GradsAggregated)
	}
}

func TestNegativeGradientsSumCorrectly(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	vals := [][]int32{
		{100, -200, 3, -4},
		{-50, 100, -3, 4},
		{25, -50, 0, 0},
		{-75, 150, 0, 0},
	}
	for w := 0; w < 4; w++ {
		r.send(w, 1, 1, vals[w])
	}
	r.eng.Run()
	want := []int32{0, 0, 0, 0}
	got := r.results[0].grads
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gradient %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNoResultUntilAllSources(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	for w := 0; w < 3; w++ {
		r.send(w, 2, 1, seqGrads(64, 1))
	}
	r.eng.Run()
	if len(r.results) != 0 {
		t.Fatal("result emitted before all sources contributed")
	}
	r.send(3, 2, 1, seqGrads(64, 1))
	r.eng.Run()
	if len(r.results) != 4 {
		t.Fatalf("results = %d", len(r.results))
	}
}

func TestDuplicatePacketIgnored(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	r.send(0, 3, 1, seqGrads(64, 1))
	r.send(0, 3, 1, seqGrads(64, 1)) // retransmission
	for w := 1; w < 4; w++ {
		r.send(w, 3, 1, seqGrads(64, 1))
	}
	r.eng.Run()
	if r.agg.Stats().Duplicates != 1 {
		t.Fatalf("duplicates = %d", r.agg.Stats().Duplicates)
	}
	if got := r.results[0].grads[0]; got != 4 {
		t.Fatalf("gradient = %d, want 4 (duplicate must not double-count)", got)
	}
}

func TestUnknownJobDropped(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	frame := packet.BuildTrioML(packet.UDPSpec{SrcPort: 1},
		packet.TrioML{JobID: 99, BlockID: 1, SrcID: 0}, seqGrads(8, 1))
	r.pfe.Inject(0, 1, frame)
	r.eng.Run()
	if r.agg.Stats().NoJobDrops != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestUnknownSourceDropped(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	r.send(7, 1, 1, seqGrads(8, 1)) // src 7 not in job
	r.eng.Run()
	if r.agg.Stats().NonAggPkts != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestOversizedBlockDropped(t *testing.T) {
	cfg := fourWorkerJob()
	cfg.BlockGradMax = 64
	r := newRig(t, cfg)
	r.send(0, 1, 1, seqGrads(128, 1))
	r.eng.Run()
	if r.agg.Stats().NonAggPkts != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestGenerationReuseRestartsBlock(t *testing.T) {
	// Iteration 1 completes on block 0; iteration 2 reuses block 0. Sums
	// must not leak across generations.
	r := newRig(t, fourWorkerJob())
	for w := 0; w < 4; w++ {
		r.send(w, 0, 1, seqGrads(64, 1))
	}
	r.eng.Run()
	for w := 0; w < 4; w++ {
		r.send(w, 0, 2, seqGrads(64, 10))
	}
	r.eng.Run()
	if len(r.results) != 8 {
		t.Fatalf("results = %d", len(r.results))
	}
	if r.results[0].grads[0] != 4 || r.results[4].grads[0] != 40 {
		t.Fatalf("sums = %d, %d", r.results[0].grads[0], r.results[4].grads[0])
	}
}

func TestIncompleteOldGenerationSuperseded(t *testing.T) {
	// Three workers contribute gen 1 of block 0; before the fourth arrives,
	// gen 2 packets start landing on the same block id (e.g. after a
	// degraded recovery at the servers). Gen 2 must restart cleanly, and the
	// late gen-1 packet must be recognized as stale.
	r := newRig(t, fourWorkerJob())
	for w := 0; w < 3; w++ {
		r.send(w, 0, 1, seqGrads(64, 1))
	}
	r.eng.Run()
	for w := 0; w < 4; w++ {
		r.send(w, 0, 2, seqGrads(64, 100))
	}
	r.eng.Run()
	if len(r.results) != 4 {
		t.Fatalf("results = %d", len(r.results))
	}
	if r.results[0].grads[0] != 400 {
		t.Fatalf("gen-2 sum = %d, want 400", r.results[0].grads[0])
	}
	// A gen-1 packet arriving while the gen-2 record is still open is stale.
	r.send(3, 1, 1, seqGrads(64, 1)) // opens block 1, gen 1
	r.eng.Run()
	r.send(0, 1, 2, seqGrads(64, 100)) // block 1 moves to gen 2
	r.eng.Run()
	r.send(3, 1, 1, seqGrads(64, 1)) // late gen-1 contribution: stale
	r.eng.Run()
	if r.agg.Stats().StaleDrops != 1 {
		t.Fatalf("stale drops = %d", r.agg.Stats().StaleDrops)
	}
	// After a completed block's record is deleted, a very late gen-1 packet
	// recreates the block rather than being dropped; it will age out via the
	// timer path. This must not corrupt state.
	r.send(3, 0, 1, seqGrads(64, 1))
	r.eng.Run()
	if r.pfe.Hash.Len() != 3 { // job record + block 0 (gen 1) + block 1 (gen 2)
		t.Fatalf("hash len = %d", r.pfe.Hash.Len())
	}
}

func TestWindowStreamingManyBlocks(t *testing.T) {
	// 4 workers stream 64 blocks concurrently (window = 64): all blocks
	// aggregate correctly regardless of interleaving.
	r := newRig(t, fourWorkerJob())
	for b := uint32(0); b < 64; b++ {
		for w := 0; w < 4; w++ {
			r.send(w, b, 1, seqGrads(128, int32(b+1)))
		}
	}
	r.eng.Run()
	if len(r.results) != 64*4 {
		t.Fatalf("results = %d", len(r.results))
	}
	seen := map[uint32]bool{}
	for _, res := range r.results {
		if res.port != 0 {
			continue
		}
		if seen[res.hdr.BlockID] {
			t.Fatalf("block %d completed twice", res.hdr.BlockID)
		}
		seen[res.hdr.BlockID] = true
		want := 4 * int32(res.hdr.BlockID+1)
		if res.grads[0] != want {
			t.Fatalf("block %d sum = %d, want %d", res.hdr.BlockID, res.grads[0], want)
		}
	}
	st := r.agg.Stats()
	if st.BlocksCompleted != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBlockPoolExhaustionDrops(t *testing.T) {
	cfg := fourWorkerJob()
	cfg.BlockCntMax = 2
	r := newRig(t, cfg)
	for b := uint32(0); b < 3; b++ {
		r.send(0, b, 1, seqGrads(8, 1)) // only worker 0: blocks stay open
	}
	r.eng.Run()
	if r.agg.Stats().NoBufferDrops != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestStragglerTimeoutEmitsDegradedResult(t *testing.T) {
	cfg := fourWorkerJob()
	cfg.BlockExpiry = 10 * sim.Millisecond
	r := newRig(t, cfg)
	r.agg.StartStragglerDetection(100, 10*sim.Millisecond)
	// Workers 0..2 contribute; worker 3 straggles forever.
	for w := 0; w < 3; w++ {
		r.send(w, 0, 1, seqGrads(64, 1))
	}
	r.eng.RunUntil(25 * sim.Millisecond)
	if len(r.results) != 4 {
		t.Fatalf("results = %d", len(r.results))
	}
	res := r.results[0]
	if !res.hdr.Degraded || res.hdr.AgeOp == 0 {
		t.Fatalf("hdr = %+v, want degraded", res.hdr)
	}
	if res.hdr.SrcCnt != 3 {
		t.Fatalf("src_cnt = %d, want 3 (partial set)", res.hdr.SrcCnt)
	}
	if res.grads[0] != 3 {
		t.Fatalf("partial sum = %d, want 3", res.grads[0])
	}
	// Recovery within 2× the timeout (Fig. 14's bound).
	if res.at > 20*sim.Millisecond {
		t.Fatalf("degraded result at %v, want <= 20 ms", res.at)
	}
	if r.agg.Stats().BlocksDegraded != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestActiveBlocksDoNotAgeOut(t *testing.T) {
	cfg := fourWorkerJob()
	r := newRig(t, cfg)
	r.agg.StartStragglerDetection(10, 5*sim.Millisecond)
	// A different block completes every 2 ms; REF flags stay fresh because
	// each new block's packets re-reference the job record, and block
	// records complete before aging.
	for b := uint32(0); b < 10; b++ {
		b := b
		r.eng.At(sim.Time(b)*2*sim.Millisecond, func() {
			for w := 0; w < 4; w++ {
				r.send(w, b, 1, seqGrads(16, 1))
			}
		})
	}
	r.eng.RunUntil(50 * sim.Millisecond)
	st := r.agg.Stats()
	if st.BlocksDegraded != 0 {
		t.Fatalf("active traffic degraded: %+v", st)
	}
	if st.BlocksCompleted != 10 {
		t.Fatalf("completed = %d", st.BlocksCompleted)
	}
}

func TestLateStragglerAfterDegradedResultIsStale(t *testing.T) {
	cfg := fourWorkerJob()
	r := newRig(t, cfg)
	r.agg.StartStragglerDetection(100, 5*sim.Millisecond)
	for w := 0; w < 3; w++ {
		r.send(w, 0, 1, seqGrads(64, 1))
	}
	r.eng.RunUntil(15 * sim.Millisecond)
	if r.agg.Stats().BlocksDegraded != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
	// The straggler's packet finally arrives: the record is gone, so it
	// recreates a block that then ages out again harmlessly — or, if the
	// servers moved to gen 2, it is stale. Here the record was deleted, so
	// the packet creates a fresh block; it must not crash or corrupt state.
	r.send(3, 0, 1, seqGrads(64, 1))
	r.eng.RunUntil(30 * sim.Millisecond)
	if r.agg.Stats().BlocksDegraded != 2 {
		t.Fatalf("late straggler block did not age out: %+v", r.agg.Stats())
	}
	// Its lone degraded result reports src_cnt = 1.
	last := r.results[len(r.results)-1]
	if last.hdr.SrcCnt != 1 || !last.hdr.Degraded {
		t.Fatalf("late block result = %+v", last.hdr)
	}
}

func TestTimerThreadsScanCostSplitAcrossN(t *testing.T) {
	cfg := fourWorkerJob()
	r := newRig(t, cfg)
	// Open many straggling blocks.
	for b := uint32(0); b < 500; b++ {
		r.send(0, b, 1, seqGrads(8, 1))
	}
	r.eng.Run()
	r.agg.StartStragglerDetection(100, 10*sim.Millisecond)
	r.eng.RunUntil(25 * sim.Millisecond)
	st := r.agg.Stats()
	if st.BlocksDegraded != 500 {
		t.Fatalf("degraded = %d, want 500", st.BlocksDegraded)
	}
	if st.TimerScans < 100 {
		t.Fatalf("timer scans = %d", st.TimerScans)
	}
}

func TestInstallJobValidation(t *testing.T) {
	eng := sim.NewEngine()
	p := pfe.New(eng, RecommendedPFEConfig())
	a := New(p)
	base := fourWorkerJob()

	dup := base
	if err := a.InstallJob(dup); err != nil {
		t.Fatal(err)
	}
	if err := a.InstallJob(dup); err == nil {
		t.Fatal("duplicate job accepted")
	}

	bad := base
	bad.JobID = 2
	bad.Sources = []uint8{1, 1}
	if err := a.InstallJob(bad); err == nil {
		t.Fatal("duplicate sources accepted")
	}

	bad = base
	bad.JobID = 3
	bad.Sources = []uint8{ResultSrcID}
	if err := a.InstallJob(bad); err == nil {
		t.Fatal("reserved source id accepted")
	}

	bad = base
	bad.JobID = 4
	bad.BlockGradMax = 5000
	if err := a.InstallJob(bad); err == nil {
		t.Fatal("grad max beyond 12-bit field accepted")
	}

	bad = base
	bad.JobID = 5
	bad.BlockExpiry = 500 * sim.Microsecond
	if err := a.InstallJob(bad); err == nil {
		t.Fatal("sub-millisecond expiry accepted")
	}
}

func TestRemoveJobReclaimsHashEntries(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	r.send(0, 1, 1, seqGrads(8, 1))
	r.eng.Run()
	before := r.pfe.Hash.Len()
	if before != 2 { // job record + open block record
		t.Fatalf("hash len = %d", before)
	}
	r.agg.RemoveJob(1)
	if r.pfe.Hash.Len() != 0 {
		t.Fatalf("hash len after remove = %d", r.pfe.Hash.Len())
	}
	// Packets for the removed job now drop.
	r.send(0, 2, 1, seqGrads(8, 1))
	r.eng.Run()
	if r.agg.Stats().NoJobDrops != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestRecordRoundTrips(t *testing.T) {
	j := JobRecord{
		BlockCurrCnt: 3, BlockCntMax: 4095, BlockGradMax: 1024, BlockExpMs: 10,
		BlockTotalCnt: 123456, OutSrcAddr: 0x0A000001, OutDstAddr: 0xE0000101,
		OutNhAddr: 0xDEAD, SrcCnt: 6,
		SrcMask: [4]uint64{0x3F, 0, 1 << 63, 42},
	}
	b := make([]byte, recordTxnBytes)
	j.encode(b)
	if got := decodeJob(b); got != j {
		t.Fatalf("job round trip: %+v != %+v", got, j)
	}

	r := BlockRecord{
		BlockExpMs: 10, BlockAge: 2, BlockStartTime: 123456789,
		JobCtxPAddr: 0x100, AggrPAddr: 0x400000, GradCnt: 1024, GenID: 777,
		RcvdCnt: 5, RcvdMask: [4]uint64{0x1F, 9, 8, 7},
	}
	r.encode(b)
	if got := decodeBlock(b); got != r {
		t.Fatalf("block round trip: %+v != %+v", got, r)
	}
}

func TestKeySplitRoundTrip(t *testing.T) {
	for _, c := range []struct {
		job   uint8
		block uint32
	}{{0, 0}, {1, 5}, {255, JobBlockID - 1}, {7, 1 << 30}} {
		j, b := SplitKey(Key(c.job, c.block))
		if j != c.job || b != c.block {
			t.Fatalf("key round trip (%d,%d) -> (%d,%d)", c.job, c.block, j, b)
		}
	}
}

func TestAggregationLatencyHookFires(t *testing.T) {
	r := newRig(t, fourWorkerJob())
	var latencies []sim.Time
	r.agg.OnAggregated = func(arrival, done sim.Time, grads int) {
		latencies = append(latencies, done-arrival)
	}
	for w := 0; w < 4; w++ {
		r.send(w, 0, 1, seqGrads(1024, 1))
	}
	r.eng.Run()
	if len(latencies) != 4 {
		t.Fatalf("hook fired %d times", len(latencies))
	}
	for _, l := range latencies {
		if l <= 0 {
			t.Fatal("non-positive latency")
		}
	}
	// The 1024-gradient packet walks 62 tail chunks: latency must be in the
	// tens of microseconds at the recommended operating point.
	if latencies[0] < 10*sim.Microsecond {
		t.Fatalf("latency %v implausibly small", latencies[0])
	}
}

func TestMultipleConcurrentJobs(t *testing.T) {
	// Fig. 9: multiple aggregation jobs present concurrently, each with
	// multiple blocks in parallel, sharing one PFE's hash table and memory.
	eng := sim.NewEngine()
	p := pfe.New(eng, RecommendedPFEConfig())
	a := New(p)
	var results []result
	p.SetOutput(func(port int, frame []byte, at sim.Time) {
		f, err := packet.Decode(frame)
		if err != nil || !f.IsTrioML() {
			t.Errorf("bad frame: %v", err)
			return
		}
		grads, _ := packet.Gradients(f.Payload, int(f.ML.GradCnt))
		results = append(results, result{port: port, hdr: *f.ML, grads: grads, at: at})
	})
	// Job 1: workers 0,1 on ports 0,1. Job 2: workers 0,1,2 on ports 2,3,4.
	if err := a.InstallJob(JobConfig{
		JobID: 1, Sources: []uint8{0, 1}, ResultPorts: []int{0, 1}, UpstreamPort: -1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.InstallJob(JobConfig{
		JobID: 2, Sources: []uint8{0, 1, 2}, ResultPorts: []int{2, 3, 4}, UpstreamPort: -1,
	}); err != nil {
		t.Fatal(err)
	}
	send := func(job uint8, worker int, block uint32, scale int32) {
		frame := packet.BuildTrioML(packet.UDPSpec{
			SrcIP: [4]byte{10, byte(job), 0, byte(worker + 1)}, DstIP: [4]byte{10, 0, 0, 100}, SrcPort: 6000,
		}, packet.TrioML{JobID: job, BlockID: block, SrcID: uint8(worker), GenID: 1}, seqGrads(32, scale))
		p.Inject(worker%p.Cfg.NumPorts, uint64(job)<<32|uint64(worker), frame)
	}
	// Interleave the jobs' blocks.
	for b := uint32(0); b < 10; b++ {
		send(1, 0, b, 1)
		send(2, 0, b, 10)
		send(2, 1, b, 20)
		send(1, 1, b, 2)
		send(2, 2, b, 30)
	}
	eng.Run()
	perJob := map[uint8]int{}
	for _, r := range results {
		perJob[r.hdr.JobID]++
		switch r.hdr.JobID {
		case 1:
			if r.grads[0] != 3 { // (1+2)*1
				t.Fatalf("job 1 block %d sum = %d", r.hdr.BlockID, r.grads[0])
			}
			if r.hdr.SrcCnt != 2 {
				t.Fatalf("job 1 src_cnt = %d", r.hdr.SrcCnt)
			}
		case 2:
			if r.grads[0] != 60 { // (10+20+30)*1
				t.Fatalf("job 2 block %d sum = %d", r.hdr.BlockID, r.grads[0])
			}
			if r.hdr.SrcCnt != 3 {
				t.Fatalf("job 2 src_cnt = %d", r.hdr.SrcCnt)
			}
		}
	}
	if perJob[1] != 10*2 || perJob[2] != 10*3 {
		t.Fatalf("results per job = %v", perJob)
	}
	st := a.Stats()
	if st.BlocksCompleted != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJobsShareTimerThreads(t *testing.T) {
	// One set of timer threads ages blocks of every installed job.
	eng := sim.NewEngine()
	p := pfe.New(eng, RecommendedPFEConfig())
	a := New(p)
	for job := uint8(1); job <= 2; job++ {
		if err := a.InstallJob(JobConfig{
			JobID: job, Sources: []uint8{0, 1}, ResultPorts: []int{0, 1},
			UpstreamPort: -1, BlockExpiry: 5 * sim.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	a.StartStragglerDetection(20, 5*sim.Millisecond)
	for job := uint8(1); job <= 2; job++ {
		frame := packet.BuildTrioML(packet.UDPSpec{SrcPort: 6000},
			packet.TrioML{JobID: job, BlockID: 0, SrcID: 0, GenID: 1}, seqGrads(8, 1))
		p.Inject(0, uint64(job), frame) // only worker 0 contributes
	}
	eng.RunUntil(20 * sim.Millisecond)
	if a.Stats().BlocksDegraded != 2 {
		t.Fatalf("stats = %+v, want both jobs' blocks aged", a.Stats())
	}
}
