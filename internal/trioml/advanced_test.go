package trioml

import (
	"testing"

	"github.com/trioml/triogo/internal/sim"
)

// deadWorkerRig sets up four workers of which worker 3 is permanently dead,
// with fast straggler detection and slow advanced analysis running.
func deadWorkerRig(t *testing.T, threshold uint64) (*rig, func()) {
	t.Helper()
	cfg := fourWorkerJob()
	cfg.BlockExpiry = 2 * sim.Millisecond
	r := newRig(t, cfg)
	stopFast := r.agg.StartStragglerDetection(20, 2*sim.Millisecond)
	stopSlow := r.agg.StartAdvancedMitigation(AdvancedConfig{
		AnalyzePeriod:  20 * sim.Millisecond,
		EventThreshold: threshold,
	})
	return r, func() { stopFast.Stop(); stopSlow.Stop() }
}

// sendAlive has workers 0..2 contribute block b (worker 3 stays dark).
func sendAlive(r *rig, b uint32) {
	for w := 0; w < 3; w++ {
		r.send(w, b, 1, seqGrads(32, 1))
	}
}

func TestPermanentStragglerDemoted(t *testing.T) {
	r, stop := deadWorkerRig(t, 5)
	defer stop()
	var demotions []uint8
	r.agg.OnDemotion = func(job, src uint8, at sim.Time) {
		demotions = append(demotions, src)
	}
	// Ten blocks, 3 ms apart: each ages out against the dead worker,
	// accumulating straggler events until the analyzer demotes it.
	for b := uint32(0); b < 10; b++ {
		b := b
		r.eng.At(sim.Time(b)*3*sim.Millisecond, func() { sendAlive(r, b) })
	}
	r.eng.RunUntil(60 * sim.Millisecond)
	if len(demotions) != 1 || demotions[0] != 3 {
		t.Fatalf("demotions = %v, want worker 3", demotions)
	}
	if !r.agg.Demoted(1, 3) {
		t.Fatal("Demoted() disagrees")
	}
	if r.agg.Stats().SourcesDemoted != 1 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestBlocksCompleteWithoutDemotedSource(t *testing.T) {
	r, stop := deadWorkerRig(t, 5)
	defer stop()
	for b := uint32(0); b < 10; b++ {
		b := b
		r.eng.At(sim.Time(b)*3*sim.Millisecond, func() { sendAlive(r, b) })
	}
	r.eng.RunUntil(60 * sim.Millisecond)
	if !r.agg.Demoted(1, 3) {
		t.Fatal("precondition: not demoted")
	}
	degradedBefore := r.agg.Stats().BlocksDegraded
	// Post-demotion blocks complete promptly, with src_cnt 3 and no
	// timeout penalty.
	start := r.eng.Now()
	sendAlive(r, 100)
	r.eng.RunUntil(start + 1*sim.Millisecond)
	last := r.results[len(r.results)-1]
	if last.hdr.BlockID != 100 {
		t.Fatalf("block 100 not completed within 1 ms of the last packet (last result: %+v)", last.hdr)
	}
	if last.hdr.SrcCnt != 3 || last.hdr.Degraded {
		t.Fatalf("post-demotion result = %+v, want full 3-source completion", last.hdr)
	}
	if r.agg.Stats().BlocksDegraded != degradedBefore {
		t.Fatal("post-demotion block still aged out")
	}
}

func TestDemotionNotificationReachesWorkers(t *testing.T) {
	r, stop := deadWorkerRig(t, 3)
	defer stop()
	for b := uint32(0); b < 8; b++ {
		b := b
		r.eng.At(sim.Time(b)*3*sim.Millisecond, func() { sendAlive(r, b) })
	}
	r.eng.RunUntil(60 * sim.Millisecond)
	notifications := 0
	for _, res := range r.results {
		if res.hdr.AgeOp == NotifyDemoted {
			notifications++
			if res.hdr.SrcCnt != 3 {
				t.Fatalf("notification names source %d, want 3", res.hdr.SrcCnt)
			}
		}
	}
	// Multicast to the four result ports.
	if notifications != 4 {
		t.Fatalf("notifications = %d, want 4 (one per port)", notifications)
	}
}

func TestTemporaryStragglerNotDemoted(t *testing.T) {
	// Worker 3 misses only two blocks (below the threshold of 5) and then
	// participates again: no demotion.
	r, stop := deadWorkerRig(t, 5)
	defer stop()
	for b := uint32(0); b < 2; b++ {
		b := b
		r.eng.At(sim.Time(b)*3*sim.Millisecond, func() { sendAlive(r, b) })
	}
	for b := uint32(2); b < 10; b++ {
		b := b
		r.eng.At(sim.Time(b)*3*sim.Millisecond, func() {
			sendAlive(r, b)
			r.send(3, b, 1, seqGrads(32, 1))
		})
	}
	r.eng.RunUntil(80 * sim.Millisecond)
	if r.agg.Demoted(1, 3) {
		t.Fatal("temporary straggler was demoted")
	}
	if r.agg.Stats().BlocksDegraded != 2 {
		t.Fatalf("stats = %+v", r.agg.Stats())
	}
}

func TestReinstateSource(t *testing.T) {
	r, stop := deadWorkerRig(t, 3)
	defer stop()
	for b := uint32(0); b < 6; b++ {
		b := b
		r.eng.At(sim.Time(b)*3*sim.Millisecond, func() { sendAlive(r, b) })
	}
	r.eng.RunUntil(60 * sim.Millisecond)
	if !r.agg.Demoted(1, 3) {
		t.Fatal("precondition: not demoted")
	}
	if err := r.agg.ReinstateSource(1, 3); err != nil {
		t.Fatal(err)
	}
	if r.agg.Demoted(1, 3) {
		t.Fatal("still demoted after reinstatement")
	}
	// The job waits for worker 3 again: a 3-source block stays open.
	before := len(r.results)
	sendAlive(r, 200)
	r.eng.RunUntil(r.eng.Now() + 1*sim.Millisecond)
	for _, res := range r.results[before:] {
		if res.hdr.BlockID == 200 && !res.hdr.Degraded {
			t.Fatal("block completed without the reinstated source")
		}
	}
	r.send(3, 200, 1, seqGrads(32, 1))
	r.eng.RunUntil(r.eng.Now() + 1*sim.Millisecond)
	found := false
	for _, res := range r.results[before:] {
		if res.hdr.BlockID == 200 && res.hdr.SrcCnt == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("block 200 did not complete with all four sources")
	}
	// Reinstating twice errors.
	if err := r.agg.ReinstateSource(1, 3); err == nil {
		t.Fatal("double reinstatement accepted")
	}
	if err := r.agg.ReinstateSource(9, 0); err == nil {
		t.Fatal("unknown job accepted")
	}
}
