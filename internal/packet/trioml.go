package packet

import (
	"encoding/binary"
	"fmt"

	"github.com/trioml/triogo/internal/bitfield"
)

// TrioMLHeaderLen is the serialized trio_ml_hdr_t size (Fig. 8: 12 bytes).
const TrioMLHeaderLen = 12

// MaxGradientsPerPacket is the largest gradient block one packet carries
// (Fig. 7: up to 4096 bytes = 1024 32-bit gradients).
const MaxGradientsPerPacket = 1024

// trioMLLayout is the bit-exact layout of trio_ml_hdr_t from Fig. 8.
var trioMLLayout = bitfield.NewLayout(
	bitfield.Field{Name: "job_id", Width: 8},
	bitfield.Field{Name: "block_id", Width: 32},
	bitfield.Field{Name: "age_op", Width: 4},
	bitfield.Field{Name: "final", Width: 1},
	bitfield.Field{Name: "degraded", Width: 1},
	bitfield.Field{Name: "", Width: 2}, // unused for byte alignment
	bitfield.Field{Name: "src_id", Width: 8},
	bitfield.Field{Name: "src_cnt", Width: 8},
	bitfield.Field{Name: "gen_id", Width: 16},
	bitfield.Field{Name: "", Width: 4}, // room to expand grad_cnt
	bitfield.Field{Name: "grad_cnt", Width: 12},
)

// TrioML is the aggregation header that follows UDP in Trio-ML packets.
// Field semantics follow §4–§5 of the paper.
type TrioML struct {
	JobID    uint8  // aggregation job id
	BlockID  uint32 // aggregation block id
	AgeOp    uint8  // 4 bits: whether the block has aged out
	Final    bool   // block is the job's final block
	Degraded bool   // aggregation is partial (straggler mitigation)
	SrcID    uint8  // source id of the packet
	SrcCnt   uint8  // number of sources contributing
	GenID    uint16 // generation id (iteration number)
	GradCnt  uint16 // 12 bits: number of gradients in this packet
}

func (h *TrioML) LayerName() string { return "TrioML" }
func (h *TrioML) HeaderLen() int    { return TrioMLHeaderLen }

func (h *TrioML) MarshalTo(b []byte) int {
	for i := 0; i < TrioMLHeaderLen; i++ {
		b[i] = 0
	}
	rec := b[:TrioMLHeaderLen]
	trioMLLayout.Put(rec, "job_id", uint64(h.JobID))
	trioMLLayout.Put(rec, "block_id", uint64(h.BlockID))
	trioMLLayout.Put(rec, "age_op", uint64(h.AgeOp))
	trioMLLayout.Put(rec, "final", boolBit(h.Final))
	trioMLLayout.Put(rec, "degraded", boolBit(h.Degraded))
	trioMLLayout.Put(rec, "src_id", uint64(h.SrcID))
	trioMLLayout.Put(rec, "src_cnt", uint64(h.SrcCnt))
	trioMLLayout.Put(rec, "gen_id", uint64(h.GenID))
	trioMLLayout.Put(rec, "grad_cnt", uint64(h.GradCnt))
	return TrioMLHeaderLen
}

func (h *TrioML) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < TrioMLHeaderLen {
		return nil, fmt.Errorf("trioml: %w (%d bytes)", ErrTruncated, len(b))
	}
	rec := b[:TrioMLHeaderLen]
	h.JobID = uint8(trioMLLayout.Get(rec, "job_id"))
	h.BlockID = uint32(trioMLLayout.Get(rec, "block_id"))
	h.AgeOp = uint8(trioMLLayout.Get(rec, "age_op"))
	h.Final = trioMLLayout.Get(rec, "final") != 0
	h.Degraded = trioMLLayout.Get(rec, "degraded") != 0
	h.SrcID = uint8(trioMLLayout.Get(rec, "src_id"))
	h.SrcCnt = uint8(trioMLLayout.Get(rec, "src_cnt"))
	h.GenID = uint16(trioMLLayout.Get(rec, "gen_id"))
	h.GradCnt = uint16(trioMLLayout.Get(rec, "grad_cnt"))
	return b[TrioMLHeaderLen:], nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// PutGradients serializes gradients as big-endian int32 values (the ATP-style
// fixed-point representation the paper adopts) into b and returns the byte
// count. b must hold 4*len(grads) bytes.
func PutGradients(b []byte, grads []int32) int {
	for i, g := range grads {
		binary.BigEndian.PutUint32(b[4*i:], uint32(g))
	}
	return 4 * len(grads)
}

// Gradients parses count big-endian int32 gradients from b.
func Gradients(b []byte, count int) ([]int32, error) {
	if len(b) < 4*count {
		return nil, fmt.Errorf("gradients: %w (%d bytes for %d gradients)", ErrTruncated, len(b), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// AddGradients adds count big-endian int32 gradients from b into dst in
// place — the allocation-free aggregation path for hot receive loops. Only
// min(count, len(dst)) values are added. b must hold 4*count bytes
// (validate with CheckGradients first).
func AddGradients(dst []int32, b []byte, count int) {
	if count > len(dst) {
		count = len(dst)
	}
	for i := 0; i < count; i++ {
		dst[i] += int32(binary.BigEndian.Uint32(b[4*i:]))
	}
}

// CheckGradients validates that b holds count serialized gradients.
func CheckGradients(b []byte, count int) error {
	if len(b) < 4*count {
		return fmt.Errorf("gradients: %w (%d bytes for %d gradients)", ErrTruncated, len(b), count)
	}
	return nil
}
