package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decode errors returned by the layer parsers.
var (
	ErrTruncated   = errors.New("packet: truncated header")
	ErrBadVersion  = errors.New("packet: unsupported IP version")
	ErrBadIHL      = errors.New("packet: IHL below minimum")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
	ErrBadLength   = errors.New("packet: length field inconsistent")
)

// Ethernet is the 14-byte Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// EthernetLen is the serialized Ethernet header size.
const EthernetLen = 14

func (e *Ethernet) LayerName() string { return "Ethernet" }
func (e *Ethernet) HeaderLen() int    { return EthernetLen }

func (e *Ethernet) MarshalTo(b []byte) int {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return EthernetLen
}

func (e *Ethernet) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < EthernetLen {
		return nil, fmt.Errorf("ethernet: %w (%d bytes)", ErrTruncated, len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[EthernetLen:], nil
}

// IPv4 is the IPv4 header. Options are carried verbatim; the filter example
// in §3.2 drops packets whose IHL exceeds 5, so options must survive decode.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst [4]byte
	Options  []byte // 0–40 bytes, multiple of 4
}

// IPv4MinLen is the option-less IPv4 header size.
const IPv4MinLen = 20

func (ip *IPv4) LayerName() string { return "IPv4" }

// IHL reports the header length field in 32-bit words.
func (ip *IPv4) IHL() uint8 { return uint8(IPv4MinLen+len(ip.Options)) / 4 }

func (ip *IPv4) HeaderLen() int { return IPv4MinLen + len(ip.Options) }

func (ip *IPv4) MarshalTo(b []byte) int {
	n := ip.HeaderLen()
	b[0] = 4<<4 | ip.IHL()
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1FFF)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], ip.Src[:])
	copy(b[16:20], ip.Dst[:])
	copy(b[20:n], ip.Options)
	ip.Checksum = Checksum(b[:n], 0)
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return n
}

func (ip *IPv4) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < IPv4MinLen {
		return nil, fmt.Errorf("ipv4: %w (%d bytes)", ErrTruncated, len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return nil, fmt.Errorf("ipv4: %w (version %d)", ErrBadVersion, v)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPv4MinLen {
		return nil, fmt.Errorf("ipv4: %w (ihl %d)", ErrBadIHL, ihl)
	}
	if len(b) < ihl {
		return nil, fmt.Errorf("ipv4: %w (ihl %d > %d bytes)", ErrTruncated, ihl, len(b))
	}
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1FFF
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	ip.Options = append(ip.Options[:0], b[IPv4MinLen:ihl]...)
	if Checksum(b[:ihl], 0) != 0 {
		return nil, fmt.Errorf("ipv4: %w", ErrBadChecksum)
	}
	if int(ip.TotalLen) < ihl {
		return nil, fmt.Errorf("ipv4: %w (total %d < ihl %d)", ErrBadLength, ip.TotalLen, ihl)
	}
	return b[ihl:], nil
}

// UDP is the 8-byte UDP header. Checksum covers the pseudo-header and
// payload when serialized through Serialize; Unmarshal records but does not
// verify it (the simulator's memory system is assumed error-free, and
// real-socket traffic is verified by the kernel).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// UDPLen is the serialized UDP header size.
const UDPLen = 8

func (u *UDP) LayerName() string { return "UDP" }
func (u *UDP) HeaderLen() int    { return UDPLen }

func (u *UDP) MarshalTo(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return UDPLen
}

func (u *UDP) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < UDPLen {
		return nil, fmt.Errorf("udp: %w (%d bytes)", ErrTruncated, len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(u.Length) < UDPLen {
		return nil, fmt.Errorf("udp: %w (length %d)", ErrBadLength, u.Length)
	}
	return b[UDPLen:], nil
}
