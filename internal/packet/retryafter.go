package packet

import (
	"encoding/binary"
	"fmt"
)

// Source-id values with special meaning in server→client traffic. Contribution
// packets carry real source ids (0..63, bounded by the 64-bit receive mask);
// the top two values are reserved for the reverse direction.
const (
	// ResultSrcID marks an aggregated-result packet (the server speaking).
	ResultSrcID = 0xFF
	// CtrlSrcID marks a server→client control packet; today the only control
	// type is the retry-after NACK the admission ladder emits when it refuses
	// a contribution.
	CtrlSrcID = 0xFE
)

// Retry-after reason codes, carried in the TrioML header's AgeOp field of a
// CtrlSrcID packet.
const (
	// RetryReasonQuota: the sender's tenant is over one of its own quotas
	// (open blocks, bytes in flight, or packet rate).
	RetryReasonQuota = 1
	// RetryReasonOverload: the server is in the overload rung of its
	// degradation ladder and refused new-block admission globally.
	RetryReasonOverload = 2
)

// RetryAfterLen is the serialized retry-after record size.
const RetryAfterLen = 4

// RetryAfter is the payload of a CtrlSrcID packet: the back-off the server
// suggests before the client retries the refused contribution. The header's
// JobID/BlockID/GenID echo the refused packet so the client can attribute the
// NACK; AgeOp carries the reason code.
type RetryAfter struct {
	Millis uint32 // suggested back-off in milliseconds
}

func (r *RetryAfter) LayerName() string { return "RetryAfter" }
func (r *RetryAfter) HeaderLen() int    { return RetryAfterLen }

func (r *RetryAfter) MarshalTo(b []byte) int {
	binary.BigEndian.PutUint32(b, r.Millis)
	return RetryAfterLen
}

func (r *RetryAfter) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < RetryAfterLen {
		return nil, fmt.Errorf("retryafter: %w (%d bytes)", ErrTruncated, len(b))
	}
	r.Millis = binary.BigEndian.Uint32(b)
	return b[RetryAfterLen:], nil
}

// BuildRetryAfter marshals a complete retry-after NACK: the TrioML header of
// the refused contribution with SrcID swapped to CtrlSrcID and AgeOp set to
// the reason, followed by the RetryAfter record.
func BuildRetryAfter(h TrioML, reason uint8, millis uint32) []byte {
	h.SrcID = CtrlSrcID
	h.AgeOp = reason
	h.GradCnt = 0
	buf := make([]byte, TrioMLHeaderLen+RetryAfterLen)
	h.MarshalTo(buf)
	(&RetryAfter{Millis: millis}).MarshalTo(buf[TrioMLHeaderLen:])
	return buf
}
