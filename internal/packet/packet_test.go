package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func testSpec() UDPSpec {
	return UDPSpec{
		SrcMAC:  MACFromUint64(0x0200_0000_0001),
		DstMAC:  MACFromUint64(0x0200_0000_00FF),
		SrcIP:   Addr4(netip.MustParseAddr("10.0.0.1")),
		DstIP:   Addr4(netip.MustParseAddr("10.0.0.254")),
		SrcPort: 40000,
		DstPort: 9999,
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 discussions.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	even := Checksum([]byte{0xAB, 0x00}, 0)
	odd := Checksum([]byte{0xAB}, 0)
	if even != odd {
		t.Fatalf("odd-length padding mismatch: %#x vs %#x", odd, even)
	}
}

func TestMACString(t *testing.T) {
	m := MACFromUint64(0x0A0B0C0D0E0F)
	if m.String() != "0a:0b:0c:0d:0e:0f" {
		t.Fatalf("MAC string = %s", m)
	}
}

func TestAddr4RejectsIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Addr4(netip.MustParseAddr("::1"))
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: MACFromUint64(1), Src: MACFromUint64(2), EtherType: EtherTypeIPv4}
	b := make([]byte, EthernetLen)
	e.MarshalTo(b)
	var got Ethernet
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || got != e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if _, err := e.Unmarshal(make([]byte, 13)); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestIPv4RoundTripWithOptions(t *testing.T) {
	ip := IPv4{
		TOS: 0x10, ID: 42, Flags: 2, FragOff: 0,
		TTL: 17, Protocol: ProtoUDP,
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
		Options: []byte{0x94, 0x04, 0x00, 0x00}, // router alert
	}
	ip.TotalLen = uint16(ip.HeaderLen())
	if ip.IHL() != 6 {
		t.Fatalf("IHL = %d, want 6", ip.IHL())
	}
	b := make([]byte, ip.HeaderLen())
	ip.MarshalTo(b)
	var got IPv4
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
	if !bytes.Equal(got.Options, ip.Options) || got.TTL != 17 || got.ID != 42 || got.Flags != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, TotalLen: 20}
	b := make([]byte, ip.HeaderLen())
	ip.MarshalTo(b)
	b[8] ^= 0xFF // corrupt TTL
	var got IPv4
	if _, err := got.Unmarshal(b); err == nil {
		t.Fatal("corrupted header decoded without error")
	}
}

func TestIPv4RejectsVersion6(t *testing.T) {
	b := make([]byte, 20)
	b[0] = 6<<4 | 5
	var ip IPv4
	if _, err := ip.Unmarshal(b); err == nil {
		t.Fatal("want version error")
	}
}

func TestIPv4RejectsShortIHL(t *testing.T) {
	ip := IPv4{TTL: 1, TotalLen: 20}
	b := make([]byte, 20)
	ip.MarshalTo(b)
	b[0] = 4<<4 | 3 // IHL 3 words = 12 bytes < 20
	var got IPv4
	if _, err := got.Unmarshal(b); err == nil {
		t.Fatal("want IHL error")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 1234, DstPort: TrioMLPort, Length: 20, Checksum: 0xBEEF}
	b := make([]byte, UDPLen)
	u.MarshalTo(b)
	var got UDP
	if _, err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Fatalf("%+v != %+v", got, u)
	}
}

func TestTrioMLHeaderRoundTrip(t *testing.T) {
	h := TrioML{
		JobID: 3, BlockID: 0xCAFEBABE, AgeOp: 0xA, Final: true, Degraded: true,
		SrcID: 5, SrcCnt: 6, GenID: 0x55AA, GradCnt: 1024,
	}
	b := make([]byte, TrioMLHeaderLen)
	h.MarshalTo(b)
	var got TrioML
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestTrioMLHeaderProperty(t *testing.T) {
	f := func(job uint8, block uint32, age uint8, fin, deg bool, src, cnt uint8, gen uint16, grads uint16) bool {
		h := TrioML{
			JobID: job, BlockID: block, AgeOp: age & 0xF, Final: fin, Degraded: deg,
			SrcID: src, SrcCnt: cnt, GenID: gen, GradCnt: grads & 0xFFF,
		}
		b := make([]byte, TrioMLHeaderLen)
		h.MarshalTo(b)
		var got TrioML
		if _, err := got.Unmarshal(b); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGradientsRoundTrip(t *testing.T) {
	grads := []int32{0, 1, -1, 1 << 30, -(1 << 30), 123456789}
	b := make([]byte, 4*len(grads))
	PutGradients(b, grads)
	got, err := Gradients(b, len(grads))
	if err != nil {
		t.Fatal(err)
	}
	for i := range grads {
		if got[i] != grads[i] {
			t.Fatalf("gradient %d: %d != %d", i, got[i], grads[i])
		}
	}
}

func TestGradientsTruncated(t *testing.T) {
	if _, err := Gradients(make([]byte, 7), 2); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestBuildAndDecodeUDP(t *testing.T) {
	payload := []byte("hello trio")
	raw := BuildUDP(testSpec(), payload)
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsTrioML() {
		t.Fatal("plain UDP decoded as Trio-ML")
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload = %q", f.Payload)
	}
	if f.UDP.SrcPort != 40000 || f.UDP.DstPort != 9999 {
		t.Fatalf("ports = %d->%d", f.UDP.SrcPort, f.UDP.DstPort)
	}
	if int(f.UDP.Length) != UDPLen+len(payload) {
		t.Fatalf("udp length = %d", f.UDP.Length)
	}
	if int(f.IP.TotalLen) != len(raw)-EthernetLen {
		t.Fatalf("ip total length = %d, frame = %d", f.IP.TotalLen, len(raw))
	}
	if !f.VerifyUDPChecksum() {
		t.Fatal("UDP checksum does not verify")
	}
}

func TestBuildAndDecodeTrioML(t *testing.T) {
	grads := make([]int32, 256)
	for i := range grads {
		grads[i] = int32(i * 7)
	}
	spec := testSpec()
	spec.DstPort = 0 // defaulted to TrioMLPort
	raw := BuildTrioML(spec, TrioML{JobID: 1, BlockID: 9, SrcID: 2, GenID: 4}, grads)
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsTrioML() {
		t.Fatal("not decoded as Trio-ML")
	}
	if f.ML.GradCnt != 256 {
		t.Fatalf("grad_cnt = %d", f.ML.GradCnt)
	}
	got, err := Gradients(f.Payload, int(f.ML.GradCnt))
	if err != nil {
		t.Fatal(err)
	}
	for i := range grads {
		if got[i] != grads[i] {
			t.Fatalf("gradient %d mismatch", i)
		}
	}
	// Fig. 7 layout: 14 + 20 + 8 + 12 + 4*1024 max.
	if want := EthernetLen + IPv4MinLen + UDPLen + TrioMLHeaderLen + 4*256; len(raw) != want {
		t.Fatalf("frame = %d bytes, want %d", len(raw), want)
	}
}

func TestBuildTrioMLMaxPacketSize(t *testing.T) {
	raw := BuildTrioML(testSpec(), TrioML{JobID: 1}, make([]int32, MaxGradientsPerPacket))
	if want := EthernetLen + IPv4MinLen + UDPLen + TrioMLHeaderLen + 4096; len(raw) != want {
		t.Fatalf("frame = %d, want %d (Fig. 7: up to 4096 gradient bytes)", len(raw), want)
	}
}

func TestBuildTrioMLTooManyGradientsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildTrioML(testSpec(), TrioML{}, make([]int32, MaxGradientsPerPacket+1))
}

func TestDecodeNonIPPassesThrough(t *testing.T) {
	e := Ethernet{EtherType: EtherTypeARP}
	raw := make([]byte, EthernetLen+4)
	e.MarshalTo(raw)
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Eth.EtherType != EtherTypeARP || len(f.Payload) != 4 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestDecodeCorruptIPFails(t *testing.T) {
	raw := BuildUDP(testSpec(), []byte("x"))
	raw[EthernetLen+8] ^= 0x55 // corrupt TTL within IP header
	if _, err := Decode(raw); err == nil {
		t.Fatal("want checksum error")
	}
}

func TestUDPChecksumNeverZeroOnWire(t *testing.T) {
	// Build many frames; serialized checksum field must never be zero
	// (RFC 768 mandates 0xFFFF substitution).
	spec := testSpec()
	for i := 0; i < 200; i++ {
		spec.SrcPort = uint16(i)
		raw := BuildUDP(spec, []byte{byte(i)})
		f, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if f.UDP.Checksum == 0 {
			t.Fatal("zero UDP checksum on wire")
		}
	}
}

func TestDecodeBuildPropertyRoundTrip(t *testing.T) {
	f := func(payload []byte, sport, dport uint16) bool {
		if dport == TrioMLPort && len(payload) < TrioMLHeaderLen {
			return true // trio-ml decode legitimately fails on short payloads
		}
		spec := testSpec()
		spec.SrcPort, spec.DstPort = sport, dport
		if spec.DstPort == 0 {
			spec.DstPort = 1
		}
		raw := BuildUDP(spec, payload)
		fr, err := Decode(raw)
		if err != nil {
			return false
		}
		if fr.IsTrioML() {
			return bytes.Equal(fr.Raw[EthernetLen+IPv4MinLen+UDPLen:], payload)
		}
		return bytes.Equal(fr.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
