package packet

import (
	"encoding/binary"
	"fmt"
)

// Frame is a fully decoded Ethernet/IPv4/UDP packet, with the Trio-ML header
// additionally decoded when the UDP destination port matches TrioMLPort.
type Frame struct {
	Eth     Ethernet
	IP      IPv4
	UDP     UDP
	ML      *TrioML // nil unless a Trio-ML aggregation packet
	Payload []byte  // bytes after the innermost decoded header (view into Raw)
	Raw     []byte  // the complete frame

	mlBuf TrioML // storage ML points at, so DecodeInto reuse allocates nothing
}

// UDPSpec names the endpoints of a UDP packet to build.
type UDPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	TTL              uint8 // 0 means 64
	IPOptions        []byte
}

// udpRoom allocates and header-fills a frame with room for payloadLen bytes
// of UDP payload, returning the frame, the payload view, and the header
// offsets finishUDP needs. Callers write the payload in place and then call
// finishUDP — one allocation per frame, no payload staging copy.
func udpRoom(spec UDPSpec, payloadLen int) (buf, payload []byte, ipStart, udpStart int) {
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip := IPv4{
		TTL:      ttl,
		Protocol: ProtoUDP,
		Src:      spec.SrcIP,
		Dst:      spec.DstIP,
		Options:  spec.IPOptions,
	}
	udp := UDP{
		SrcPort: spec.SrcPort,
		DstPort: spec.DstPort,
		Length:  uint16(UDPLen + payloadLen),
	}
	ip.TotalLen = uint16(ip.HeaderLen() + UDPLen + payloadLen)
	eth := Ethernet{Dst: spec.DstMAC, Src: spec.SrcMAC, EtherType: EtherTypeIPv4}

	buf = make([]byte, EthernetLen+int(ip.TotalLen))
	off := eth.MarshalTo(buf)
	ipStart = off
	off += ip.MarshalTo(buf[off:])
	udpStart = off
	off += udp.MarshalTo(buf[off:])
	return buf, buf[off:], ipStart, udpStart
}

// finishUDP computes the UDP checksum once the payload is in place.
func finishUDP(buf []byte, ipStart, udpStart int) {
	csum := udpChecksum(buf[ipStart:], buf[udpStart:])
	binary.BigEndian.PutUint16(buf[udpStart+6:udpStart+8], csum)
}

// BuildUDP serializes a complete Ethernet/IPv4/UDP frame around payload,
// filling in lengths and both checksums.
func BuildUDP(spec UDPSpec, payload []byte) []byte {
	buf, room, ipStart, udpStart := udpRoom(spec, len(payload))
	copy(room, payload)
	finishUDP(buf, ipStart, udpStart)
	return buf
}

// BuildTrioML serializes a Trio-ML aggregation packet: UDP payload is the
// 12-byte trio_ml_hdr_t followed by hdr.GradCnt big-endian int32 gradients.
// If hdr.GradCnt is zero it is set from len(grads). The header and gradients
// are marshalled straight into the frame buffer.
func BuildTrioML(spec UDPSpec, hdr TrioML, grads []int32) []byte {
	if len(grads) > MaxGradientsPerPacket {
		panic(fmt.Sprintf("packet: %d gradients exceeds max %d per packet", len(grads), MaxGradientsPerPacket))
	}
	if hdr.GradCnt == 0 {
		hdr.GradCnt = uint16(len(grads))
	}
	if spec.DstPort == 0 {
		spec.DstPort = TrioMLPort
	}
	buf, room, ipStart, udpStart := udpRoom(spec, TrioMLHeaderLen+4*len(grads))
	hdr.MarshalTo(room)
	PutGradients(room[TrioMLHeaderLen:], grads)
	finishUDP(buf, ipStart, udpStart)
	return buf
}

// udpChecksum computes the UDP checksum given the serialized IP header (for
// the pseudo-header fields) and the serialized UDP header+payload with a
// zeroed checksum field.
func udpChecksum(ipHdr, udpSeg []byte) uint16 {
	var pseudo uint32
	pseudo += uint32(ipHdr[12])<<8 | uint32(ipHdr[13]) // src
	pseudo += uint32(ipHdr[14])<<8 | uint32(ipHdr[15])
	pseudo += uint32(ipHdr[16])<<8 | uint32(ipHdr[17]) // dst
	pseudo += uint32(ipHdr[18])<<8 | uint32(ipHdr[19])
	pseudo += uint32(ProtoUDP)
	pseudo += uint32(len(udpSeg))
	sum := Checksum(udpSeg, pseudo)
	if sum == 0 {
		sum = 0xFFFF // RFC 768: transmitted all-ones when computed zero
	}
	return sum
}

// Decode parses a complete Ethernet frame. Non-IPv4 and non-UDP packets
// decode successfully with Payload holding the undecoded remainder; header
// corruption returns an error identifying the failing layer.
func Decode(raw []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeInto(f, raw); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto parses raw into f, reusing f's storage — the per-packet
// allocation-free variant of Decode for hot receive paths. On error f's
// contents are unspecified.
func DecodeInto(f *Frame, raw []byte) error {
	f.ML = nil
	f.Raw = raw
	rest, err := f.Eth.Unmarshal(raw)
	if err != nil {
		return err
	}
	f.Payload = rest
	if f.Eth.EtherType != EtherTypeIPv4 {
		return nil
	}
	if rest, err = f.IP.Unmarshal(rest); err != nil {
		return err
	}
	f.Payload = rest
	if f.IP.Protocol != ProtoUDP {
		return nil
	}
	if rest, err = f.UDP.Unmarshal(rest); err != nil {
		return err
	}
	f.Payload = rest
	if f.UDP.DstPort == TrioMLPort {
		if rest, err = f.mlBuf.Unmarshal(rest); err != nil {
			return err
		}
		f.ML = &f.mlBuf
		f.Payload = rest
	}
	return nil
}

// IsTrioML reports whether the frame carries a Trio-ML aggregation header.
func (f *Frame) IsTrioML() bool { return f.ML != nil }

// VerifyUDPChecksum recomputes the UDP checksum of a decoded frame and
// reports whether it matches. Frames without UDP report true.
func (f *Frame) VerifyUDPChecksum() bool {
	if f.Eth.EtherType != EtherTypeIPv4 || f.IP.Protocol != ProtoUDP {
		return true
	}
	ipStart := EthernetLen
	udpStart := ipStart + f.IP.HeaderLen()
	seg := append([]byte(nil), f.Raw[udpStart:]...)
	seg[6], seg[7] = 0, 0
	return udpChecksum(f.Raw[ipStart:], seg) == f.UDP.Checksum
}
