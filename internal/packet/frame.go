package packet

import (
	"encoding/binary"
	"fmt"
)

// Frame is a fully decoded Ethernet/IPv4/UDP packet, with the Trio-ML header
// additionally decoded when the UDP destination port matches TrioMLPort.
type Frame struct {
	Eth     Ethernet
	IP      IPv4
	UDP     UDP
	ML      *TrioML // nil unless a Trio-ML aggregation packet
	Payload []byte  // bytes after the innermost decoded header (view into Raw)
	Raw     []byte  // the complete frame
}

// UDPSpec names the endpoints of a UDP packet to build.
type UDPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	TTL              uint8 // 0 means 64
	IPOptions        []byte
}

// BuildUDP serializes a complete Ethernet/IPv4/UDP frame around payload,
// filling in lengths and both checksums.
func BuildUDP(spec UDPSpec, payload []byte) []byte {
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip := IPv4{
		TTL:      ttl,
		Protocol: ProtoUDP,
		Src:      spec.SrcIP,
		Dst:      spec.DstIP,
		Options:  spec.IPOptions,
	}
	udp := UDP{
		SrcPort: spec.SrcPort,
		DstPort: spec.DstPort,
		Length:  uint16(UDPLen + len(payload)),
	}
	ip.TotalLen = uint16(ip.HeaderLen() + UDPLen + len(payload))
	eth := Ethernet{Dst: spec.DstMAC, Src: spec.SrcMAC, EtherType: EtherTypeIPv4}

	buf := make([]byte, EthernetLen+int(ip.TotalLen))
	off := eth.MarshalTo(buf)
	ipStart := off
	off += ip.MarshalTo(buf[off:])
	udpStart := off
	off += udp.MarshalTo(buf[off:])
	copy(buf[off:], payload)

	csum := udpChecksum(buf[ipStart:], buf[udpStart:])
	binary.BigEndian.PutUint16(buf[udpStart+6:udpStart+8], csum)
	return buf
}

// BuildTrioML serializes a Trio-ML aggregation packet: UDP payload is the
// 12-byte trio_ml_hdr_t followed by hdr.GradCnt big-endian int32 gradients.
// If hdr.GradCnt is zero it is set from len(grads).
func BuildTrioML(spec UDPSpec, hdr TrioML, grads []int32) []byte {
	if len(grads) > MaxGradientsPerPacket {
		panic(fmt.Sprintf("packet: %d gradients exceeds max %d per packet", len(grads), MaxGradientsPerPacket))
	}
	if hdr.GradCnt == 0 {
		hdr.GradCnt = uint16(len(grads))
	}
	payload := make([]byte, TrioMLHeaderLen+4*len(grads))
	hdr.MarshalTo(payload)
	PutGradients(payload[TrioMLHeaderLen:], grads)
	if spec.DstPort == 0 {
		spec.DstPort = TrioMLPort
	}
	return BuildUDP(spec, payload)
}

// udpChecksum computes the UDP checksum given the serialized IP header (for
// the pseudo-header fields) and the serialized UDP header+payload with a
// zeroed checksum field.
func udpChecksum(ipHdr, udpSeg []byte) uint16 {
	var pseudo uint32
	pseudo += uint32(ipHdr[12])<<8 | uint32(ipHdr[13]) // src
	pseudo += uint32(ipHdr[14])<<8 | uint32(ipHdr[15])
	pseudo += uint32(ipHdr[16])<<8 | uint32(ipHdr[17]) // dst
	pseudo += uint32(ipHdr[18])<<8 | uint32(ipHdr[19])
	pseudo += uint32(ProtoUDP)
	pseudo += uint32(len(udpSeg))
	sum := Checksum(udpSeg, pseudo)
	if sum == 0 {
		sum = 0xFFFF // RFC 768: transmitted all-ones when computed zero
	}
	return sum
}

// Decode parses a complete Ethernet frame. Non-IPv4 and non-UDP packets
// decode successfully with Payload holding the undecoded remainder; header
// corruption returns an error identifying the failing layer.
func Decode(raw []byte) (*Frame, error) {
	f := &Frame{Raw: raw}
	rest, err := f.Eth.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	f.Payload = rest
	if f.Eth.EtherType != EtherTypeIPv4 {
		return f, nil
	}
	if rest, err = f.IP.Unmarshal(rest); err != nil {
		return nil, err
	}
	f.Payload = rest
	if f.IP.Protocol != ProtoUDP {
		return f, nil
	}
	if rest, err = f.UDP.Unmarshal(rest); err != nil {
		return nil, err
	}
	f.Payload = rest
	if f.UDP.DstPort == TrioMLPort {
		var ml TrioML
		if rest, err = ml.Unmarshal(rest); err != nil {
			return nil, err
		}
		f.ML = &ml
		f.Payload = rest
	}
	return f, nil
}

// IsTrioML reports whether the frame carries a Trio-ML aggregation header.
func (f *Frame) IsTrioML() bool { return f.ML != nil }

// VerifyUDPChecksum recomputes the UDP checksum of a decoded frame and
// reports whether it matches. Frames without UDP report true.
func (f *Frame) VerifyUDPChecksum() bool {
	if f.Eth.EtherType != EtherTypeIPv4 || f.IP.Protocol != ProtoUDP {
		return true
	}
	ipStart := EthernetLen
	udpStart := ipStart + f.IP.HeaderLen()
	seg := append([]byte(nil), f.Raw[udpStart:]...)
	seg[6], seg[7] = 0, 0
	return udpChecksum(f.Raw[ipStart:], seg) == f.UDP.Checksum
}
