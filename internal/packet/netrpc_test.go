package packet

import (
	"errors"
	"testing"
)

func TestNetRPCRoundTrip(t *testing.T) {
	h := NetRPC{
		Op:         NetRPCResponse,
		Flags:      NetRPCFlagCached | NetRPCFlagCoalesced,
		ClientID:   0x1234,
		Method:     7,
		PayloadLen: 24,
		RPCID:      0xDEADBEEFCAFEF00D,
	}
	buf := make([]byte, NetRPCHeaderLen)
	if n := h.MarshalTo(buf); n != NetRPCHeaderLen {
		t.Fatalf("marshal = %d bytes", n)
	}
	var got NetRPC
	rest, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || got != h {
		t.Fatalf("round-trip = %+v, want %+v", got, h)
	}
}

func TestNetRPCTruncated(t *testing.T) {
	var h NetRPC
	if _, err := h.Unmarshal(make([]byte, NetRPCHeaderLen-1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildNetRPCFrame(t *testing.T) {
	spec := UDPSpec{
		SrcMAC: MAC{1, 2, 3, 4, 5, 6}, DstMAC: MAC{7, 8, 9, 10, 11, 12},
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 30000,
	}
	payload := []byte("the-answer")
	raw := BuildNetRPC(spec, NetRPC{Op: NetRPCRequest, ClientID: 3, Method: 9, RPCID: 42}, payload)

	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.UDP.DstPort != NetRPCPort {
		t.Fatalf("dst port = %d", f.UDP.DstPort)
	}
	if !f.VerifyUDPChecksum() {
		t.Fatal("bad UDP checksum")
	}
	var h NetRPC
	rest, err := h.Unmarshal(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.Op != NetRPCRequest || h.ClientID != 3 || h.Method != 9 || h.RPCID != 42 {
		t.Fatalf("header = %+v", h)
	}
	if h.PayloadLen != uint16(len(payload)) || string(rest) != string(payload) {
		t.Fatalf("payload = %q (len field %d)", rest, h.PayloadLen)
	}
}

// TestNetRPCOffsetsMatchMarshal pins the exported field offsets the
// microcode program generator builds its lmem defines from.
func TestNetRPCOffsetsMatchMarshal(t *testing.T) {
	h := NetRPC{Op: 0x11, Flags: 0x22, ClientID: 0x3344, Method: 0x5566, PayloadLen: 0x7788, RPCID: 0x99AABBCCDDEEFF00}
	buf := make([]byte, NetRPCHeaderLen)
	h.MarshalTo(buf)
	if buf[NetRPCOpOff] != 0x11 || buf[NetRPCFlagsOff] != 0x22 {
		t.Fatalf("op/flags bytes = % x", buf[:2])
	}
	if buf[NetRPCClientOff] != 0x33 || buf[NetRPCMethodOff] != 0x55 || buf[NetRPCPlenOff] != 0x77 {
		t.Fatalf("u16 field offsets wrong: % x", buf)
	}
	if buf[NetRPCIDOff] != 0x99 || buf[NetRPCIDOff+7] != 0x00 {
		t.Fatalf("rpc_id offset wrong: % x", buf)
	}
	if NetRPCPayloadOff != NetRPCHeaderLen {
		t.Fatal("payload offset drifted from header length")
	}
}
