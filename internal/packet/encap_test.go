package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVLANRoundTrip(t *testing.T) {
	v := VLAN{PCP: 5, DEI: true, VID: 0xABC, EtherType: EtherTypeIPv4}
	b := make([]byte, VLANLen)
	v.MarshalTo(b)
	var got VLAN
	rest, err := got.Unmarshal(b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("err=%v rest=%d", err, len(rest))
	}
	if got != v {
		t.Fatalf("%+v != %+v", got, v)
	}
}

func TestVLANProperty(t *testing.T) {
	f := func(pcp uint8, dei bool, vid, etype uint16) bool {
		v := VLAN{PCP: pcp & 7, DEI: dei, VID: vid & 0xFFF, EtherType: etype}
		b := make([]byte, VLANLen)
		v.MarshalTo(b)
		var got VLAN
		if _, err := got.Unmarshal(b); err != nil {
			return false
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMPLSLabelRoundTrip(t *testing.T) {
	f := func(label uint32, tc uint8, bottom bool, ttl uint8) bool {
		m := MPLSLabel{Label: label & 0xFFFFF, TC: tc & 7, Bottom: bottom, TTL: ttl}
		b := make([]byte, MPLSLabelLen)
		m.MarshalTo(b)
		var got MPLSLabel
		if _, err := got.Unmarshal(b); err != nil {
			return false
		}
		return got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMPLSStackStopsAtBottom(t *testing.T) {
	b := make([]byte, 3*MPLSLabelLen+4)
	(&MPLSLabel{Label: 100, TTL: 64}).MarshalTo(b[0:])
	(&MPLSLabel{Label: 200, TTL: 64}).MarshalTo(b[4:])
	(&MPLSLabel{Label: 300, Bottom: true, TTL: 64}).MarshalTo(b[8:])
	stack, rest, err := MPLSStack(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) != 3 || stack[0].Label != 100 || stack[2].Label != 300 {
		t.Fatalf("stack = %+v", stack)
	}
	if len(rest) != 4 {
		t.Fatalf("rest = %d", len(rest))
	}
}

func TestMPLSStackWithoutBottomErrors(t *testing.T) {
	b := make([]byte, 20*MPLSLabelLen)
	for i := 0; i < 20; i++ {
		(&MPLSLabel{Label: uint32(i)}).MarshalTo(b[4*i:])
	}
	if _, _, err := MPLSStack(b); err == nil {
		t.Fatal("runaway stack accepted")
	}
}

func TestDecodeEncapVLANOverMPLSOverIPv4(t *testing.T) {
	// Build inner UDP/IPv4, wrap in a 2-label MPLS stack, then a VLAN tag —
	// the §8 "inner headers depend on lookup results" stack.
	inner := BuildUDP(UDPSpec{
		SrcIP: [4]byte{192, 168, 1, 1}, DstIP: [4]byte{192, 168, 1, 2},
		SrcPort: 7, DstPort: 9,
	}, []byte("deep payload"))
	frame := PushMPLS(MACFromUint64(1), MACFromUint64(2),
		[]MPLSLabel{{Label: 16, TTL: 64}, {Label: 17, TTL: 64}},
		inner[EthernetLen:])
	frame = PushVLAN(frame, VLAN{PCP: 3, VID: 100})

	e, err := DecodeEncap(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.VLANs) != 1 || e.VLANs[0].VID != 100 {
		t.Fatalf("vlans = %+v", e.VLANs)
	}
	if len(e.MPLS) != 2 || e.MPLS[0].Label != 16 || !e.MPLS[1].Bottom {
		t.Fatalf("mpls = %+v", e.MPLS)
	}
	if e.IP == nil || e.IP.Src != [4]byte{192, 168, 1, 1} {
		t.Fatalf("ip = %+v", e.IP)
	}
	if e.UDP == nil || e.UDP.DstPort != 9 {
		t.Fatalf("udp = %+v", e.UDP)
	}
	if !bytes.Equal(e.Rest, []byte("deep payload")) {
		t.Fatalf("rest = %q", e.Rest)
	}
}

func TestDecodeEncapPlainIPv4(t *testing.T) {
	frame := BuildUDP(UDPSpec{SrcPort: 1, DstPort: 2}, []byte("x"))
	e, err := DecodeEncap(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.VLANs) != 0 || len(e.MPLS) != 0 || e.IP == nil || e.UDP == nil {
		t.Fatalf("encap = %+v", e)
	}
}

func TestDecodeEncapDoubleVLAN(t *testing.T) {
	frame := BuildUDP(UDPSpec{SrcPort: 1, DstPort: 2}, []byte("x"))
	frame = PushVLAN(frame, VLAN{VID: 200}) // inner (C-tag)
	frame = PushVLAN(frame, VLAN{VID: 100}) // outer (S-tag)
	e, err := DecodeEncap(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.VLANs) != 2 || e.VLANs[0].VID != 100 || e.VLANs[1].VID != 200 {
		t.Fatalf("vlans = %+v", e.VLANs)
	}
	if e.IP == nil {
		t.Fatal("inner IP lost")
	}
}

func TestDecodeEncapNonIPBelowMPLS(t *testing.T) {
	frame := PushMPLS(MACFromUint64(1), MACFromUint64(2),
		[]MPLSLabel{{Label: 16}}, []byte{0x60, 0, 0, 0}) // version 6 nibble
	e, err := DecodeEncap(frame)
	if err != nil {
		t.Fatal(err)
	}
	if e.IP != nil || len(e.Rest) != 4 {
		t.Fatalf("encap = %+v", e)
	}
}

func TestPushMPLSEmptyStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PushMPLS(MAC{}, MAC{}, nil, nil)
}
