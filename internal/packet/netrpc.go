package packet

import (
	"encoding/binary"
	"fmt"
)

// NetRPCPort is the pre-defined UDP destination port that addresses the
// in-network RPC aggregation/caching service (apps/netrpc), the way
// TrioMLPort addresses Trio-ML aggregation.
const NetRPCPort = 12100

// NetRPC ops.
const (
	// NetRPCRequest is a client→service call for an idempotent RPC.
	NetRPCRequest = 1
	// NetRPCResponse is a service→client result — emitted by the origin
	// server, replayed by the PFE cache, or fanned out to coalesced waiters.
	NetRPCResponse = 2
)

// NetRPC flag bits. The PFE sets them when it, rather than the origin
// server, decides a packet's fate; clients use them to attribute latency.
const (
	// NetRPCFlagCached marks a response served from the PFE-resident result
	// cache without touching the origin server.
	NetRPCFlagCached = 1 << 0
	// NetRPCFlagCoalesced marks a response delivered by the coalesced-fanout
	// path: the request never left the PFE, and the reply is a replica of
	// another client's response.
	NetRPCFlagCoalesced = 1 << 1
)

// NetRPCHeaderLen is the serialized netrpc_hdr_t size. The layout is
// byte-aligned big-endian so the PFE microcode reads every field with a
// single lmem access:
//
//	offset  width  field
//	0       1      op
//	1       1      flags
//	2       2      client_id
//	4       2      method
//	6       2      payload_len
//	8       8      rpc_id
//	16             payload
const NetRPCHeaderLen = 16

// Field offsets within the header (== within the UDP payload), exported for
// the microcode program generator's lmem defines.
const (
	NetRPCOpOff      = 0
	NetRPCFlagsOff   = 1
	NetRPCClientOff  = 2
	NetRPCMethodOff  = 4
	NetRPCPlenOff    = 6
	NetRPCIDOff      = 8
	NetRPCPayloadOff = NetRPCHeaderLen
)

// NetRPC is the RPC header that follows UDP in netrpc packets. RPCID is the
// idempotency key — clients derive it from (method, canonicalized args), so
// two clients asking the same question collide on it by construction, which
// is what coalescing and caching key on. ClientID names the requesting
// client; the service echoes it in responses and uses it to address the
// coalesced-fanout replicas.
type NetRPC struct {
	Op         uint8
	Flags      uint8
	ClientID   uint16
	Method     uint16
	PayloadLen uint16
	RPCID      uint64
}

func (h *NetRPC) LayerName() string { return "NetRPC" }
func (h *NetRPC) HeaderLen() int    { return NetRPCHeaderLen }

func (h *NetRPC) MarshalTo(b []byte) int {
	b[NetRPCOpOff] = h.Op
	b[NetRPCFlagsOff] = h.Flags
	binary.BigEndian.PutUint16(b[NetRPCClientOff:], h.ClientID)
	binary.BigEndian.PutUint16(b[NetRPCMethodOff:], h.Method)
	binary.BigEndian.PutUint16(b[NetRPCPlenOff:], h.PayloadLen)
	binary.BigEndian.PutUint64(b[NetRPCIDOff:], h.RPCID)
	return NetRPCHeaderLen
}

func (h *NetRPC) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < NetRPCHeaderLen {
		return nil, fmt.Errorf("netrpc: %w (%d bytes)", ErrTruncated, len(b))
	}
	h.Op = b[NetRPCOpOff]
	h.Flags = b[NetRPCFlagsOff]
	h.ClientID = binary.BigEndian.Uint16(b[NetRPCClientOff:])
	h.Method = binary.BigEndian.Uint16(b[NetRPCMethodOff:])
	h.PayloadLen = binary.BigEndian.Uint16(b[NetRPCPlenOff:])
	h.RPCID = binary.BigEndian.Uint64(b[NetRPCIDOff:])
	return b[NetRPCHeaderLen:], nil
}

// BuildNetRPC serializes a complete Ethernet/IPv4/UDP netrpc packet. If
// hdr.PayloadLen is zero it is set from len(payload); if spec.DstPort is
// zero it is set to NetRPCPort.
func BuildNetRPC(spec UDPSpec, hdr NetRPC, payload []byte) []byte {
	if hdr.PayloadLen == 0 {
		hdr.PayloadLen = uint16(len(payload))
	}
	if spec.DstPort == 0 {
		spec.DstPort = NetRPCPort
	}
	buf, room, ipStart, udpStart := udpRoom(spec, NetRPCHeaderLen+len(payload))
	hdr.MarshalTo(room)
	copy(room[NetRPCHeaderLen:], payload)
	finishUDP(buf, ipStart, udpStart)
	return buf
}
