package packet

import (
	"errors"
	"testing"
)

func TestRetryAfterRoundTrip(t *testing.T) {
	buf := BuildRetryAfter(TrioML{
		JobID: 7, BlockID: 42, GenID: 9, SrcID: 3, GradCnt: 128,
	}, RetryReasonQuota, 25)
	if len(buf) != TrioMLHeaderLen+RetryAfterLen {
		t.Fatalf("len = %d", len(buf))
	}
	var h TrioML
	rest, err := h.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcID != CtrlSrcID {
		t.Fatalf("src id = %#x, want CtrlSrcID", h.SrcID)
	}
	if h.AgeOp != RetryReasonQuota {
		t.Fatalf("reason = %d", h.AgeOp)
	}
	if h.JobID != 7 || h.BlockID != 42 || h.GenID != 9 {
		t.Fatalf("echoed header = %+v", h)
	}
	if h.GradCnt != 0 {
		t.Fatalf("grad cnt = %d, want 0 on a control packet", h.GradCnt)
	}
	var ra RetryAfter
	tail, err := ra.Unmarshal(rest)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Millis != 25 {
		t.Fatalf("millis = %d", ra.Millis)
	}
	if len(tail) != 0 {
		t.Fatalf("tail = %d bytes", len(tail))
	}
}

func TestRetryAfterTruncated(t *testing.T) {
	var ra RetryAfter
	if _, err := ra.Unmarshal([]byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}
