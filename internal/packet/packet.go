// Package packet implements the wire formats used throughout the Trio
// reproduction: Ethernet, IPv4, UDP, and the Trio-ML aggregation header of
// Fig. 7/8. The design follows gopacket's layered model — each header is a
// typed layer that can decode itself from bytes and serialize itself back —
// but only carries the protocols this system needs, implemented on the
// standard library alone.
//
// Both the simulated data path (internal/trio, internal/trioml) and the real
// UDP host aggregator (internal/hostagg) use these exact bytes, so a packet
// built for the simulator can be replayed on a socket unchanged.
package packet

import (
	"fmt"
	"net/netip"
)

// EtherType values understood by the decoders.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers understood by the decoders.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TrioMLPort is the pre-defined UDP destination port that addresses
// aggregation packets to the router (the paper uses 12000 as its example).
const TrioMLPort = 12000

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromUint64 builds a MAC from the low 48 bits of v, useful for generating
// stable test and simulation addresses.
func MACFromUint64(v uint64) MAC {
	var m MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// Addr4 converts a netip.Addr to its 4-byte representation, panicking on
// non-IPv4 input (addresses are static configuration in this system).
func Addr4(a netip.Addr) [4]byte {
	if !a.Is4() {
		panic(fmt.Sprintf("packet: %v is not an IPv4 address", a))
	}
	return a.As4()
}

// Layer is one decoded protocol header.
type Layer interface {
	// LayerName identifies the protocol for diagnostics.
	LayerName() string
	// HeaderLen reports the serialized header length in bytes.
	HeaderLen() int
	// MarshalTo writes the header into b, which must be at least HeaderLen
	// bytes, and returns the number of bytes written.
	MarshalTo(b []byte) int
	// Unmarshal parses the header from the front of b and returns the
	// remaining payload bytes.
	Unmarshal(b []byte) (rest []byte, err error)
}

// Checksum computes the RFC 1071 Internet checksum over b with an initial
// partial sum (used to fold in the UDP pseudo-header).
func Checksum(b []byte, initial uint32) uint16 {
	sum := initial
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
