package packet

import (
	"encoding/binary"
	"fmt"
)

// Encapsulation layers beyond the Trio-ML fast path. Trio's PPEs parse and
// rewrite arbitrary header stacks in a run-to-completion pass — the §8
// comparison with dRMT singles out MPLS-encapsulated packets, whose inner
// headers depend on lookup results, as a case where pipeline architectures
// must recirculate while Trio simply keeps executing. These layers exist so
// examples and tests can build such stacks.

// EtherTypes for the encapsulation layers.
const (
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeMPLS uint16 = 0x8847
)

// VLAN is an 802.1Q tag.
type VLAN struct {
	PCP       uint8  // 3-bit priority code point
	DEI       bool   // drop eligible indicator
	VID       uint16 // 12-bit VLAN id
	EtherType uint16 // encapsulated protocol
}

// VLANLen is the serialized 802.1Q tag size.
const VLANLen = 4

func (v *VLAN) LayerName() string { return "VLAN" }
func (v *VLAN) HeaderLen() int    { return VLANLen }

func (v *VLAN) MarshalTo(b []byte) int {
	tci := uint16(v.PCP&0x7) << 13
	if v.DEI {
		tci |= 1 << 12
	}
	tci |= v.VID & 0x0FFF
	binary.BigEndian.PutUint16(b[0:2], tci)
	binary.BigEndian.PutUint16(b[2:4], v.EtherType)
	return VLANLen
}

func (v *VLAN) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < VLANLen {
		return nil, fmt.Errorf("vlan: %w (%d bytes)", ErrTruncated, len(b))
	}
	tci := binary.BigEndian.Uint16(b[0:2])
	v.PCP = uint8(tci >> 13)
	v.DEI = tci&(1<<12) != 0
	v.VID = tci & 0x0FFF
	v.EtherType = binary.BigEndian.Uint16(b[2:4])
	return b[VLANLen:], nil
}

// MPLSLabel is one entry of an MPLS label stack.
type MPLSLabel struct {
	Label  uint32 // 20 bits
	TC     uint8  // 3-bit traffic class
	Bottom bool   // bottom-of-stack flag
	TTL    uint8
}

// MPLSLabelLen is the serialized label-stack-entry size.
const MPLSLabelLen = 4

func (m *MPLSLabel) LayerName() string { return "MPLS" }
func (m *MPLSLabel) HeaderLen() int    { return MPLSLabelLen }

func (m *MPLSLabel) MarshalTo(b []byte) int {
	v := m.Label&0xFFFFF<<12 | uint32(m.TC&0x7)<<9 | uint32(m.TTL)
	if m.Bottom {
		v |= 1 << 8
	}
	binary.BigEndian.PutUint32(b[0:4], v)
	return MPLSLabelLen
}

func (m *MPLSLabel) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < MPLSLabelLen {
		return nil, fmt.Errorf("mpls: %w (%d bytes)", ErrTruncated, len(b))
	}
	v := binary.BigEndian.Uint32(b[0:4])
	m.Label = v >> 12
	m.TC = uint8(v >> 9 & 0x7)
	m.Bottom = v&(1<<8) != 0
	m.TTL = uint8(v)
	return b[MPLSLabelLen:], nil
}

// MPLSStack parses a full label stack from b, stopping after the
// bottom-of-stack entry, and returns the stack and the remaining bytes.
func MPLSStack(b []byte) ([]MPLSLabel, []byte, error) {
	var stack []MPLSLabel
	for {
		var l MPLSLabel
		rest, err := l.Unmarshal(b)
		if err != nil {
			return nil, nil, fmt.Errorf("label %d: %w", len(stack), err)
		}
		stack = append(stack, l)
		b = rest
		if l.Bottom {
			return stack, b, nil
		}
		if len(stack) > 16 {
			return nil, nil, fmt.Errorf("mpls: label stack exceeds 16 entries without bottom-of-stack")
		}
	}
}

// PushMPLS prepends a label stack and an MPLS Ethernet header to an inner
// IPv4 packet (the bytes after an Ethernet header), producing a full frame.
func PushMPLS(dst, src MAC, stack []MPLSLabel, inner []byte) []byte {
	if len(stack) == 0 {
		panic("packet: empty MPLS stack")
	}
	frame := make([]byte, EthernetLen+MPLSLabelLen*len(stack)+len(inner))
	eth := Ethernet{Dst: dst, Src: src, EtherType: EtherTypeMPLS}
	off := eth.MarshalTo(frame)
	for i := range stack {
		stack[i].Bottom = i == len(stack)-1
		off += stack[i].MarshalTo(frame[off:])
	}
	copy(frame[off:], inner)
	return frame
}

// PushVLAN inserts an 802.1Q tag into frame after its Ethernet header.
func PushVLAN(frame []byte, tag VLAN) []byte {
	var eth Ethernet
	rest, err := eth.Unmarshal(frame)
	if err != nil {
		panic(fmt.Sprintf("packet: PushVLAN on invalid frame: %v", err))
	}
	tag.EtherType = eth.EtherType
	eth.EtherType = EtherTypeVLAN
	out := make([]byte, len(frame)+VLANLen)
	off := eth.MarshalTo(out)
	off += tag.MarshalTo(out[off:])
	copy(out[off:], rest)
	return out
}

// DecodeEncap decodes a frame that may carry VLAN tags and an MPLS stack in
// front of IPv4, returning the tags, stack, and the decoded inner frame
// layers. It demonstrates the run-to-completion parse: the loop keeps
// consuming headers until it reaches a protocol it knows, however deep.
type Encap struct {
	Eth   Ethernet
	VLANs []VLAN
	MPLS  []MPLSLabel
	IP    *IPv4
	UDP   *UDP
	Rest  []byte
}

// DecodeEncap parses an encapsulated frame.
func DecodeEncap(raw []byte) (*Encap, error) {
	e := &Encap{}
	rest, err := e.Eth.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	etype := e.Eth.EtherType
	for etype == EtherTypeVLAN {
		var v VLAN
		if rest, err = v.Unmarshal(rest); err != nil {
			return nil, err
		}
		e.VLANs = append(e.VLANs, v)
		etype = v.EtherType
	}
	if etype == EtherTypeMPLS {
		var stack []MPLSLabel
		if stack, rest, err = MPLSStack(rest); err != nil {
			return nil, err
		}
		e.MPLS = stack
		// Below the bottom of an MPLS stack the payload type is implicit;
		// IPv4 is sniffed from the version nibble, as forwarding code does.
		if len(rest) > 0 && rest[0]>>4 == 4 {
			etype = EtherTypeIPv4
		} else {
			e.Rest = rest
			return e, nil
		}
	}
	if etype != EtherTypeIPv4 {
		e.Rest = rest
		return e, nil
	}
	var ip IPv4
	if rest, err = ip.Unmarshal(rest); err != nil {
		return nil, err
	}
	e.IP = &ip
	if ip.Protocol == ProtoUDP {
		var u UDP
		if rest, err = u.Unmarshal(rest); err != nil {
			return nil, err
		}
		e.UDP = &u
	}
	e.Rest = rest
	return e, nil
}
