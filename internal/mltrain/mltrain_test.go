package mltrain

import (
	"math"
	"testing"

	"github.com/trioml/triogo/internal/faults"
	"github.com/trioml/triogo/internal/sim"
)

func TestModelsMatchTable1(t *testing.T) {
	want := map[string]struct {
		size, batch int
	}{
		"ResNet50":    {98, 64},
		"VGG11":       {507, 128},
		"DenseNet161": {109, 64},
	}
	models := Models()
	if len(models) != 3 {
		t.Fatalf("models = %d", len(models))
	}
	for _, m := range models {
		w, ok := want[m.Name]
		if !ok {
			t.Fatalf("unexpected model %s", m.Name)
		}
		if m.SizeMB != w.size || m.BatchSize != w.batch || m.Dataset != "ImageNet" {
			t.Fatalf("%s = %+v", m.Name, m)
		}
	}
	if _, ok := ModelByName("ResNet50"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := ModelByName("AlexNet"); ok {
		t.Fatal("phantom model")
	}
}

func TestAccuracyCurveCrossesTargetAtBaseIters(t *testing.T) {
	for _, m := range Models() {
		got := m.Accuracy(float64(m.BaseIters))
		if math.Abs(got-m.TargetAcc) > 0.01 {
			t.Errorf("%s: acc(BaseIters) = %.3f, want %v", m.Name, got, m.TargetAcc)
		}
		if m.Accuracy(0) != m.accStart {
			t.Errorf("%s: acc(0) = %v", m.Name, m.Accuracy(0))
		}
		// Monotone increasing.
		prev := -1.0
		for k := 0; k <= m.BaseIters*2; k += m.BaseIters / 10 {
			a := m.Accuracy(float64(k))
			if a < prev {
				t.Fatalf("%s: accuracy not monotone at %d", m.Name, k)
			}
			prev = a
		}
	}
}

func TestItersToAccuracyInvertsAccuracy(t *testing.T) {
	m := Models()[0]
	for _, target := range []float64{50, 70, 85, 90} {
		k := m.ItersToAccuracy(target)
		if math.Abs(m.Accuracy(k)-target) > 0.01 {
			t.Errorf("round trip at %v: acc(%v) = %v", target, k, m.Accuracy(k))
		}
	}
	if m.ItersToAccuracy(10) != 0 {
		t.Error("below-start target should be 0")
	}
	if !math.IsInf(m.ItersToAccuracy(99.9), 1) {
		t.Error("above-ceiling target should be +Inf")
	}
}

func TestInjectorZeroProbabilityNeverDelays(t *testing.T) {
	in := NewInjector(0, 6, 100*sim.Millisecond, 1)
	for i := 0; i < 100; i++ {
		for w := 0; w < 6; w++ {
			if in.Delay(i, w) != 0 {
				t.Fatal("delay at p=0")
			}
		}
		if in.AnyStraggler(i) {
			t.Fatal("straggler at p=0")
		}
	}
}

func TestInjectorDelayBoundsAndRate(t *testing.T) {
	typ := 100 * sim.Millisecond
	in := NewInjector(0.16, 6, typ, 7)
	straggled := 0
	const iters = 5000
	for i := 0; i < iters; i++ {
		if in.AnyStraggler(i) {
			straggled++
		}
		for w := 0; w < 6; w++ {
			d := in.Delay(i, w)
			if d != 0 && (d < typ/2 || d > 3*2*typ) {
				t.Fatalf("delay %v outside [0.5,2]x bounds (3 points)", d)
			}
		}
	}
	// P(at least one of 3 points fires) = 1-(1-0.16)^3 ≈ 0.407.
	rate := float64(straggled) / iters
	if rate < 0.35 || rate < 0.0 || rate > 0.47 {
		t.Fatalf("straggle rate = %.3f, want ≈0.41", rate)
	}
}

func TestInjectorMemoized(t *testing.T) {
	in := NewInjector(0.5, 6, 100*sim.Millisecond, 7)
	a := in.Delay(3, 2)
	for i := 0; i < 10; i++ {
		if in.Delay(3, 2) != a {
			t.Fatal("draws not memoized")
		}
	}
}

// smallCfg returns a fast configuration: small model slice via high Scale.
func smallCfg(system System, p float64) ClusterConfig {
	m := Models()[0] // ResNet50
	return ClusterConfig{
		Model: m, System: system, StragglerP: p,
		Scale: 2048, // 12.5k gradients -> ~13 blocks per iteration
		Seed:  5,
	}
}

func TestIdealClusterIterationTime(t *testing.T) {
	c, err := NewCluster(smallCfg(SystemIdeal, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	avg := AvgIterTime(res, 0)
	// ResNet50: 90 ms compute + ring 2*(5/6)*98MB*8/100G ≈ 13.1 ms.
	want := 103 * sim.Millisecond
	if avg < want-2*sim.Millisecond || avg > want+2*sim.Millisecond {
		t.Fatalf("ideal iter = %v, want ≈%v", avg, want)
	}
	if AvgGradFraction(res, 0) != 1 {
		t.Fatal("ideal must aggregate full gradients")
	}
}

func TestTrioClusterNoStragglers(t *testing.T) {
	c, err := NewCluster(smallCfg(SystemTrioML, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	avg := AvgIterTime(res, 1)
	// Compute 90 ms + streaming 98 MB at 100 Gbps ≈ 7.9 ms (+ overheads).
	if avg < 95*sim.Millisecond || avg > 115*sim.Millisecond {
		t.Fatalf("trio iter = %v, want ≈98-110 ms", avg)
	}
	if f := AvgGradFraction(res, 0); f != 1 {
		t.Fatalf("full aggregation fraction = %v", f)
	}
	st := c.TrioAgg.Stats()
	if st.BlocksDegraded != 0 {
		t.Fatalf("degraded blocks without stragglers: %+v", st)
	}
	if st.BlocksCompleted == 0 {
		t.Fatal("no blocks completed")
	}
}

func TestSwitchMLClusterNoStragglers(t *testing.T) {
	c, err := NewCluster(smallCfg(SystemSwitchML, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	avg := AvgIterTime(res, 1)
	if avg < 95*sim.Millisecond || avg > 120*sim.Millisecond {
		t.Fatalf("switchml iter = %v", avg)
	}
	if c.SwitchAgg.Stats().Results == 0 {
		t.Fatal("no results")
	}
}

func TestTrioBeatsSwitchMLUnderStragglers(t *testing.T) {
	// The headline comparison: at p=16%, Trio-ML's iteration time stays
	// near Ideal while SwitchML inflates (Fig. 13's shape).
	const iters = 12
	run := func(system System, p float64) sim.Time {
		c, err := NewCluster(smallCfg(system, p))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return AvgIterTime(res, 2)
	}
	trio := run(SystemTrioML, 0.16)
	swml := run(SystemSwitchML, 0.16)
	ideal := run(SystemIdeal, 0)
	if swml <= trio {
		t.Fatalf("SwitchML (%v) should be slower than Trio-ML (%v) under stragglers", swml, trio)
	}
	speedup := float64(swml) / float64(trio)
	if speedup < 1.15 {
		t.Fatalf("speedup = %.2f, want noticeable (>1.15)", speedup)
	}
	// Trio stays within ~40% of ideal.
	if float64(trio) > 1.4*float64(ideal) {
		t.Fatalf("trio %v strayed too far from ideal %v", trio, ideal)
	}
}

func TestTrioStragglersProduceDegradedBlocks(t *testing.T) {
	c, err := NewCluster(smallCfg(SystemTrioML, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.TrioAgg.Stats().BlocksDegraded == 0 {
		t.Fatal("no degraded blocks despite p=0.3")
	}
	if f := AvgGradFraction(res, 0); f >= 1 || f < 0.5 {
		t.Fatalf("gradient fraction = %v, want in [0.5,1)", f)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		c, err := NewCluster(smallCfg(SystemTrioML, 0.16))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(6)
		if err != nil {
			t.Fatal(err)
		}
		return res[len(res)-1].End
	}
	if run() != run() {
		t.Fatal("same seed produced different schedules")
	}
}

func TestWorkerPacketAccounting(t *testing.T) {
	c, err := NewCluster(smallCfg(SystemTrioML, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(3); err != nil {
		t.Fatal(err)
	}
	blocks := (Models()[0].Gradients()/2048 + 1023) / 1024
	for _, w := range c.Workers() {
		if w.PacketsSent != uint64(3*blocks) {
			t.Fatalf("worker %d sent %d packets, want %d", w.ID, w.PacketsSent, 3*blocks)
		}
		if w.ResultsRecv != uint64(3*blocks) {
			t.Fatalf("worker %d received %d results, want %d", w.ID, w.ResultsRecv, 3*blocks)
		}
	}
}

func TestInjectorPatternsDiffer(t *testing.T) {
	typ := 100 * sim.Millisecond
	single := NewInjectorPattern(0.16, 6, typ, 7, SingleVictim)
	perSrv := NewInjectorPattern(0.16, 6, typ, 7, PerServerDraws)
	var nSingle, nPer int
	const iters = 2000
	for i := 0; i < iters; i++ {
		for w := 0; w < 6; w++ {
			if single.Delay(i, w) > 0 {
				nSingle++
			}
			if perSrv.Delay(i, w) > 0 {
				nPer++
			}
		}
	}
	// Single victim: ≈3p events/iter; per-server: ≈18p events/iter.
	if nPer < 4*nSingle {
		t.Fatalf("per-server events (%d) not ≫ single-victim events (%d)", nPer, nSingle)
	}
}

func TestPerServerPatternSlowsSwitchMLMore(t *testing.T) {
	run := func(pat Pattern) sim.Time {
		cfg := smallCfg(SystemSwitchML, 0.16)
		cfg.Pattern = pat
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return AvgIterTime(res, 2)
	}
	if run(PerServerDraws) <= run(SingleVictim) {
		t.Fatal("per-server draws should inflate SwitchML at least as much")
	}
}

func TestLossyLinksRecoverWithRetransmission(t *testing.T) {
	// §7 "Packet loss in Trio-ML": 2% loss on every link, worker
	// retransmission armed; training still completes with full sums (the
	// source bitmask deduplicates; lost Results recreate blocks that age
	// out and re-multicast).
	cfg := smallCfg(SystemTrioML, 0)
	cfg.LossProb = 0.02
	cfg.RetransmitAfter = 30 * sim.Millisecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("iterations = %d", len(res))
	}
	var retrans uint64
	for _, w := range c.Workers() {
		retrans += w.Retransmits
	}
	if retrans == 0 {
		t.Fatal("2% loss produced no retransmissions")
	}
	if dups := c.TrioAgg.Stats().Duplicates; dups == 0 && retrans > 5 {
		t.Logf("note: %d retransmissions, %d duplicates at aggregator", retrans, dups)
	}
}

func TestLossWithoutRetransmissionStalls(t *testing.T) {
	// Without retransmission (and without straggler timeouts doing the
	// recovery), lost contributions leave blocks permanently incomplete in
	// SwitchML: the run must hit its deadline rather than finish.
	cfg := smallCfg(SystemSwitchML, 0)
	cfg.LossProb = 0.05
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(4); err == nil {
		t.Fatal("lossy SwitchML run completed without retransmission")
	}
}

func TestAdvancedMitigationRemovesDeadWorkerPenalty(t *testing.T) {
	// §5 "Advanced straggler mitigation": with worker 5 permanently dead,
	// plain mitigation pays the aging timeout every iteration; the slow
	// analysis thread demotes the dead source, after which iterations
	// complete at the no-straggler pace.
	run := func(advanced uint64) []IterationResult {
		cfg := smallCfg(SystemTrioML, 0)
		cfg.DeadWorker = 5
		cfg.AdvancedMitigation = advanced
		cfg.AnalyzePeriod = 250 * sim.Millisecond
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		if advanced > 0 && !c.TrioAgg.Demoted(1, 5) {
			t.Fatal("dead worker not demoted")
		}
		return res
	}
	plain := run(0)
	demoting := run(20)
	// Early iterations pay the timeout either way; late ones diverge.
	lateOf := func(res []IterationResult) sim.Time {
		return (res[11].End - res[7].End) / 4
	}
	plainLate, demotedLate := lateOf(plain), lateOf(demoting)
	if demotedLate >= plainLate {
		t.Fatalf("late iterations: demoted %v not faster than plain %v", demotedLate, plainLate)
	}
	// The demoted run's late iterations shed most of the ~2x-timeout aging
	// penalty (timeout is 10 ms).
	if plainLate-demotedLate < 8*sim.Millisecond {
		t.Fatalf("penalty removed = %v, want >= 8 ms", plainLate-demotedLate)
	}
}

func TestClusterSurvivesWorkerCrashes(t *testing.T) {
	// Injected worker crashes (§7 resiliency): a crashed worker loses its
	// in-flight iteration state and goes deaf for the outage; retransmission
	// plus the aggregator's aging/dedup must still drive training to
	// completion, and every crash must be matched by a rejoin.
	run := func() (sim.Time, uint64) {
		cfg := smallCfg(SystemTrioML, 0)
		cfg.RetransmitAfter = 30 * sim.Millisecond
		cfg.Faults = &faults.Config{
			Train: faults.TrainConfig{CrashProb: 0.3},
			Link:  faults.LinkConfig{DupProb: 0.02},
		}
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 8 {
			t.Fatalf("iterations = %d, want 8", len(res))
		}
		var crashes, rejoins uint64
		for _, w := range c.Workers() {
			crashes += w.Crashes
			rejoins += w.Rejoins
		}
		if crashes == 0 {
			t.Fatal("p=0.3 crash schedule fired no crashes over 8 iterations")
		}
		if rejoins != crashes {
			t.Fatalf("crashes = %d but rejoins = %d", crashes, rejoins)
		}
		st := c.FaultPlan.Stats()
		if st.TrainCrashes != crashes {
			t.Fatalf("plan counted %d crashes, workers %d", st.TrainCrashes, crashes)
		}
		if st.LinkDuplicates == 0 {
			t.Fatal("link duplication never fired")
		}
		return res[len(res)-1].End, crashes
	}
	endA, crashA := run()
	endB, crashB := run()
	if endA != endB || crashA != crashB {
		t.Fatalf("crash-injected run not deterministic: %v/%d vs %v/%d", endA, crashA, endB, crashB)
	}
}
