package mltrain

import (
	"github.com/trioml/triogo/internal/sim"
)

// Injector implements the "Slow Worker Pattern" of §6.1 (after FlexRR):
// every iteration has three possible delay points; at each point a server
// may decide to slow down with probability p, for a period drawn uniformly
// from [0.5, 2] × the model's typical iteration time.
//
// The paper's phrasing ("allowing one of the servers to decide to slow down
// at each point with a given probability p") admits two readings; both are
// implemented. The default, SingleVictim, picks one uniformly-chosen
// candidate per point — the literal reading, and the one whose measured
// Trio-ML degradation matches the paper's Fig. 13 curve almost exactly.
// PerServerDraws lets every server decide independently at each point
// (FlexRR's original pattern); it brackets the paper's SwitchML/Trio-ML
// factor from above (see EXPERIMENTS.md).
//
// Draws are memoized per (iteration, point) so that workers reaching an
// iteration at different wall-clock times observe one consistent schedule,
// and each iteration uses its own RNG stream so paired comparisons across
// systems see identical schedules.
type Injector struct {
	p           float64
	numWorkers  int
	typicalIter sim.Time
	seed        uint64
	mode        Pattern
	memo        map[int][]delay
}

// Pattern selects the Slow Worker Pattern reading.
type Pattern int

// Injection patterns.
const (
	// SingleVictim: at each delay point one uniformly-chosen server slows
	// with probability p.
	SingleVictim Pattern = iota
	// PerServerDraws: at each delay point every server independently slows
	// with probability p.
	PerServerDraws
)

// delayPoints is the number of potential delay points per iteration.
const delayPoints = 3

type delay struct {
	victim int
	dur    sim.Time
}

// NewInjector builds an injector for a cluster of numWorkers with straggling
// probability p and the given seed. Each iteration's schedule is drawn from
// its own RNG stream, so two simulations with the same seed observe the same
// schedule regardless of the order in which their workers reach iterations —
// this is what makes Trio-ML-vs-SwitchML comparisons paired.
func NewInjector(p float64, numWorkers int, typicalIter sim.Time, seed uint64) *Injector {
	return NewInjectorPattern(p, numWorkers, typicalIter, seed, SingleVictim)
}

// NewInjectorPattern builds an injector with an explicit pattern reading.
func NewInjectorPattern(p float64, numWorkers int, typicalIter sim.Time, seed uint64, mode Pattern) *Injector {
	return &Injector{p: p, numWorkers: numWorkers, typicalIter: typicalIter, seed: seed,
		mode: mode, memo: make(map[int][]delay)}
}

// draws returns the iteration's delay schedule, drawing it on first use.
func (in *Injector) draws(iter int) []delay {
	if d, ok := in.memo[iter]; ok {
		return d
	}
	rng := sim.NewRNG(in.seed, uint64(iter)+1)
	var d []delay
	for i := 0; i < delayPoints; i++ {
		switch in.mode {
		case SingleVictim:
			if in.p > 0 && rng.Bernoulli(in.p) {
				d = append(d, delay{
					victim: rng.IntN(in.numWorkers),
					dur:    rng.UniformTime(in.typicalIter/2, 2*in.typicalIter),
				})
			}
		default: // PerServerDraws
			for w := 0; w < in.numWorkers; w++ {
				if in.p > 0 && rng.Bernoulli(in.p) {
					d = append(d, delay{
						victim: w,
						dur:    rng.UniformTime(in.typicalIter/2, 2*in.typicalIter),
					})
				}
			}
		}
	}
	in.memo[iter] = d
	return d
}

// Delay reports the total slowdown worker w suffers in iteration iter.
func (in *Injector) Delay(iter, worker int) sim.Time {
	var total sim.Time
	for _, d := range in.draws(iter) {
		if d.victim == worker {
			total += d.dur
		}
	}
	return total
}

// AnyStraggler reports whether iteration iter has at least one delay.
func (in *Injector) AnyStraggler(iter int) bool {
	for _, d := range in.draws(iter) {
		if d.victim >= 0 {
			return true
		}
	}
	return false
}
