package mltrain

import (
	"fmt"

	"github.com/trioml/triogo/internal/faults"
	"github.com/trioml/triogo/internal/netsim"
	"github.com/trioml/triogo/internal/packet"
	"github.com/trioml/triogo/internal/pisa"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/switchml"
	"github.com/trioml/triogo/internal/trio"
	"github.com/trioml/triogo/internal/trio/pfe"
	"github.com/trioml/triogo/internal/trioml"
)

// System selects the allreduce substrate.
type System int

// The three systems compared in §6.
const (
	SystemTrioML System = iota
	SystemSwitchML
	SystemIdeal // NCCL ring over RDMA, no stragglers (§6.1 "Ideal setup")
)

func (s System) String() string {
	switch s {
	case SystemTrioML:
		return "Trio-ML"
	case SystemSwitchML:
		return "SwitchML"
	case SystemIdeal:
		return "Ideal"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// ClusterConfig assembles one training run.
type ClusterConfig struct {
	Model  Model
	System System

	NumWorkers     int      // default 6 (the testbed)
	GradsPerPacket int      // default 1024 (Trio-ML) / 256 (SwitchML-256)
	Window         int      // default 4096 (Trio-ML); clamped to pool for SwitchML
	PoolSize       int      // SwitchML pool; default 512
	Scale          int      // gradient scale factor (DESIGN.md §4); default 64
	StragglerP     float64  // straggling probability p
	Pattern        Pattern  // Slow Worker Pattern reading; default SingleVictim
	Timeout        sim.Time // Trio-ML block expiry; default 10 ms
	TimerThreads   int      // default 100
	LinkBandwidth  uint64   // default 100 Gbps
	Seed           uint64

	// LossProb injects independent frame loss on every link (§7's transient
	// congestion); RetransmitAfter arms worker retransmission to survive it.
	LossProb        float64
	RetransmitAfter sim.Time

	// DeadWorker, when > 0, marks that worker permanently out of service
	// (it receives results but never computes or sends); the zero value
	// means none, so worker 0 cannot be the dead one — pick any other.
	// Combine with AdvancedMitigation to reproduce §5's permanent-straggler
	// handling.
	DeadWorker int
	// AdvancedMitigation, when non-zero, launches the slow analysis thread
	// (Trio-ML only): sources missing this many aged blocks between
	// analyses are demoted from the job.
	AdvancedMitigation uint64
	AnalyzePeriod      sim.Time // default 100 ms

	// Faults attaches a deterministic fault plan (seeded with Seed) across
	// the cluster: the Link config applies to every link (each on its own
	// stream) and the Train config schedules worker crash/rejoin. Zero
	// crash-timing ranges are filled from the model's typical iteration
	// time. Nil (the default) leaves every layer fault-free.
	Faults *faults.Config
}

func (cfg *ClusterConfig) defaults() {
	if cfg.DeadWorker == 0 {
		cfg.DeadWorker = -1 // zero value means "none"; use index explicitly
	}
	if cfg.NumWorkers == 0 {
		cfg.NumWorkers = 6
	}
	if cfg.GradsPerPacket == 0 {
		if cfg.System == SystemSwitchML {
			cfg.GradsPerPacket = switchml.Grads256
		} else {
			cfg.GradsPerPacket = 1024
		}
	}
	if cfg.Window == 0 {
		cfg.Window = 4096
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 512
	}
	if cfg.Scale == 0 {
		cfg.Scale = 64
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * sim.Millisecond
	}
	if cfg.TimerThreads == 0 {
		cfg.TimerThreads = 100
	}
	if cfg.LinkBandwidth == 0 {
		cfg.LinkBandwidth = 100_000_000_000
	}
}

// IterationResult is one iteration's outcome.
type IterationResult struct {
	Iter         int
	End          sim.Time // when every worker held the iteration's results
	GradFraction float64  // fraction of gradient signal aggregated (1 = full)
}

// Cluster is a six-worker training testbed instance.
type Cluster struct {
	Eng *sim.Engine
	Cfg ClusterConfig

	workers []*Worker
	recvCnt map[int]int
	iterEnd map[int]sim.Time
	iterFra map[int]float64

	stopTimers []*pfe.TimerThreads
	linkSalt   uint64

	// FaultPlan is the realized fault plan when Cfg.Faults is set (nil
	// otherwise); read FaultPlan.Stats() for injected-fault counts.
	FaultPlan *faults.Plan
	trainFlt  *faults.TrainInjector

	// TrioAgg / SwitchAgg expose the device application for inspection
	// (whichever matches Cfg.System is non-nil).
	TrioAgg   *trioml.Aggregator
	SwitchAgg *switchml.Aggregator
}

// NewCluster wires a cluster per cfg.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.defaults()
	c := &Cluster{
		Eng: sim.NewEngine(), Cfg: cfg,
		recvCnt: make(map[int]int), iterEnd: make(map[int]sim.Time), iterFra: make(map[int]float64),
	}
	if cfg.System == SystemIdeal {
		return c, nil // analytic path; no devices
	}
	if cfg.Faults != nil {
		fc := *cfg.Faults
		typical := cfg.Model.TypicalIter(cfg.LinkBandwidth)
		if fc.Train.CrashProb > 0 {
			// Fill zero crash-timing ranges so crashes land inside (and
			// outages span a meaningful slice of) an iteration.
			if fc.Train.CrashAfterMax == 0 {
				fc.Train.CrashAfterMax = typical
			}
			if fc.Train.DowntimeMin == 0 {
				fc.Train.DowntimeMin = typical / 2
			}
			if fc.Train.DowntimeMax == 0 {
				fc.Train.DowntimeMax = 2 * typical
			}
		}
		c.FaultPlan = faults.NewPlan(cfg.Seed, fc)
		c.trainFlt = c.FaultPlan.Train(cfg.NumWorkers)
	}

	simGrads := cfg.Model.Gradients() / cfg.Scale
	blocks := (simGrads + cfg.GradsPerPacket - 1) / cfg.GradsPerPacket
	lastGrads := simGrads - (blocks-1)*cfg.GradsPerPacket
	window := cfg.Window
	if cfg.System == SystemSwitchML && window > cfg.PoolSize {
		window = cfg.PoolSize // outstanding blocks cannot exceed the slot pool
	}
	scaledBW := cfg.LinkBandwidth / uint64(cfg.Scale)

	params := WorkerParams{
		JobID: 1, Blocks: blocks, GradsPerPacket: cfg.GradsPerPacket,
		LastBlockGrads: lastGrads, Window: window, ComputeTime: cfg.Model.ComputeTime,
		RetransmitAfter: cfg.RetransmitAfter,
		Spec: packet.UDPSpec{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 100},
			SrcPort: 5000,
		},
	}

	injector := NewInjectorPattern(cfg.StragglerP, cfg.NumWorkers,
		cfg.Model.TypicalIter(cfg.LinkBandwidth), cfg.Seed, cfg.Pattern)

	var inject func(port int, frame []byte)
	switch cfg.System {
	case SystemTrioML:
		pcfg := trioml.RecommendedPFEConfig()
		pcfg.PortBandwidth = scaledBW
		r := trio.New(c.Eng, trio.Config{NumPFEs: 1, PFE: pcfg})
		agg := trioml.New(r.PFE(0))
		ports := make([]int, cfg.NumWorkers)
		srcs := make([]uint8, cfg.NumWorkers)
		for i := range ports {
			ports[i], srcs[i] = i, uint8(i)
		}
		err := agg.InstallJob(trioml.JobConfig{
			JobID: 1, Sources: srcs,
			BlockGradMax: cfg.GradsPerPacket,
			BlockExpiry:  cfg.Timeout,
			ResultPorts:  ports,
			UpstreamPort: -1,
			ResultSpec:   packet.UDPSpec{SrcIP: [4]byte{10, 0, 0, 100}, DstIP: [4]byte{224, 0, 1, 1}},
		})
		if err != nil {
			return nil, err
		}
		c.stopTimers = append(c.stopTimers, agg.StartStragglerDetection(cfg.TimerThreads, cfg.Timeout))
		if cfg.AdvancedMitigation > 0 {
			c.stopTimers = append(c.stopTimers, agg.StartAdvancedMitigation(trioml.AdvancedConfig{
				AnalyzePeriod:  cfg.AnalyzePeriod,
				EventThreshold: cfg.AdvancedMitigation,
			}))
		}
		c.TrioAgg = agg
		inject = func(port int, frame []byte) { r.Inject(0, port, uint64(port), frame) }
		c.buildWorkers(params, injector, inject, scaledBW, func(i int, recv netsim.Receiver) {
			link := netsim.NewLink(c.Eng, c.linkCfg(scaledBW), recv)
			r.AttachExternal(0, i, func(_ int, frame []byte, _ sim.Time) { link.Send(frame) })
		})
	case SystemSwitchML:
		sw := pisa.New(c.Eng, pisa.Config{PortBandwidth: scaledBW})
		ports := make([]int, cfg.NumWorkers)
		for i := range ports {
			ports[i] = i
		}
		agg, err := switchml.New(sw, switchml.Config{
			NumWorkers: cfg.NumWorkers, GradsPerPacket: cfg.GradsPerPacket,
			PoolSize: cfg.PoolSize, WorkerPorts: ports,
			ResultSpec: packet.UDPSpec{SrcIP: [4]byte{10, 0, 0, 100}, DstIP: [4]byte{224, 0, 1, 1}},
		})
		if err != nil {
			return nil, err
		}
		c.SwitchAgg = agg
		links := make([]*netsim.Link, cfg.NumWorkers)
		sw.SetOutput(func(port int, frame []byte, _ sim.Time) {
			if port < len(links) && links[port] != nil {
				links[port].Send(frame)
			}
		})
		inject = func(port int, frame []byte) { sw.Inject(port, frame) }
		c.buildWorkers(params, injector, inject, scaledBW, func(i int, recv netsim.Receiver) {
			links[i] = netsim.NewLink(c.Eng, c.linkCfg(scaledBW), recv)
		})
	default:
		return nil, fmt.Errorf("mltrain: unknown system %v", cfg.System)
	}
	return c, nil
}

// linkCfg builds the shared link configuration, including loss injection.
// Every link gets its own drop stream; a shared stream would correlate
// losses across links.
func (c *Cluster) linkCfg(bw uint64) netsim.LinkConfig {
	c.linkSalt++
	return netsim.LinkConfig{
		Bandwidth: bw, Propagation: 500 * sim.Nanosecond,
		LossProb: c.Cfg.LossProb, LossSeed: c.Cfg.Seed*131 + c.linkSalt,
		// Plan.Link is nil-safe and returns nil when link faults are off,
		// keeping the link on its allocation-free fast path.
		Faults: c.FaultPlan.Link(c.linkSalt),
	}
}

// buildWorkers constructs the worker set with uplink links toward inject and
// registers downlinks via attachDown.
func (c *Cluster) buildWorkers(params WorkerParams, injector *Injector,
	inject func(port int, frame []byte), scaledBW uint64,
	attachDown func(i int, recv netsim.Receiver)) {
	for i := 0; i < c.Cfg.NumWorkers; i++ {
		i := i
		up := netsim.NewLink(c.Eng, c.linkCfg(scaledBW),
			func(frame []byte, _ sim.Time) { inject(i, frame) })
		w := newWorker(c.Eng, i, uint8(i), c.Cfg.NumWorkers, params, injector,
			func(frame []byte) { up.Send(frame) }, c.onIterRecv)
		w.crashFlt = c.trainFlt
		attachDown(i, func(frame []byte, at sim.Time) { w.OnFrame(frame, at) })
		c.workers = append(c.workers, w)
	}
}

func (c *Cluster) onIterRecv(w *Worker, iter int, at sim.Time, frac float64) {
	c.recvCnt[iter]++
	if at > c.iterEnd[iter] {
		c.iterEnd[iter] = at
	}
	c.iterFra[iter] += frac
}

// Workers exposes the worker set (read-only use).
func (c *Cluster) Workers() []*Worker { return c.workers }

// Run executes the given number of training iterations and returns their
// results in order. The virtual-time cap guards against wedged
// configurations.
func (c *Cluster) Run(iterations int) ([]IterationResult, error) {
	if c.Cfg.System == SystemIdeal {
		return c.runIdeal(iterations), nil
	}
	for i, w := range c.workers {
		if c.Cfg.DeadWorker >= 0 && i == c.Cfg.DeadWorker {
			continue // out of service: receives results, never contributes
		}
		w.Start(iterations)
	}
	typical := c.Cfg.Model.TypicalIter(c.Cfg.LinkBandwidth)
	deadline := sim.Time(iterations+2)*typical*8 + sim.Second
	last := iterations - 1
	for c.recvCnt[last] < c.Cfg.NumWorkers {
		if !c.Eng.Step() {
			return nil, fmt.Errorf("mltrain: simulation drained before iteration %d completed (recv=%d)", last, c.recvCnt[last])
		}
		if c.Eng.Now() > deadline {
			return nil, fmt.Errorf("mltrain: deadline exceeded at iteration %d (%v)", c.doneIters(), c.Eng.Now())
		}
	}
	for _, t := range c.stopTimers {
		t.Stop()
	}
	out := make([]IterationResult, iterations)
	for i := 0; i < iterations; i++ {
		out[i] = IterationResult{
			Iter:         i,
			End:          c.iterEnd[i],
			GradFraction: c.iterFra[i] / float64(c.Cfg.NumWorkers),
		}
	}
	return out, nil
}

func (c *Cluster) doneIters() int {
	n := 0
	for c.recvCnt[n] >= c.Cfg.NumWorkers {
		n++
	}
	return n
}

// runIdeal models the no-straggler NCCL ring analytically: per iteration,
// compute plus 2(N−1)/N × model bytes at line rate.
func (c *Cluster) runIdeal(iterations int) []IterationResult {
	n := float64(c.Cfg.NumWorkers)
	ringNs := 2 * (n - 1) / n * float64(c.Cfg.Model.Bytes()) * 8 / float64(c.Cfg.LinkBandwidth) * float64(sim.Second)
	ring := sim.Time(ringNs)
	out := make([]IterationResult, iterations)
	var t sim.Time
	for i := 0; i < iterations; i++ {
		t += c.Cfg.Model.ComputeTime + ring
		out[i] = IterationResult{Iter: i, End: t, GradFraction: 1}
	}
	return out
}

// AvgIterTime averages iteration durations, skipping the first `skip`
// iterations (warm-up).
func AvgIterTime(res []IterationResult, skip int) sim.Time {
	if len(res) <= skip {
		return 0
	}
	var prev sim.Time
	if skip > 0 {
		prev = res[skip-1].End
	}
	span := res[len(res)-1].End - prev
	return span / sim.Time(len(res)-skip)
}

// AvgGradFraction averages the aggregated-gradient fraction.
func AvgGradFraction(res []IterationResult, skip int) float64 {
	if len(res) <= skip {
		return 1
	}
	var sum float64
	for _, r := range res[skip:] {
		sum += r.GradFraction
	}
	return sum / float64(len(res)-skip)
}
