package mltrain

import (
	"github.com/trioml/triogo/internal/faults"
	"github.com/trioml/triogo/internal/packet"
	"github.com/trioml/triogo/internal/sim"
)

// Worker is one training server: it alternates GPU compute (with injected
// straggler delays) and gradient streaming, keeping up to Window aggregation
// packets outstanding, and treats multicast Result packets as the allreduce
// output. Block ids are globally unique (iteration × blocks + index) and
// gen_id carries the iteration, exercising the aggregator's generation
// logic.
//
// A worker that wakes from a straggle and finds its iteration already
// completed (degraded results reached its NIC while it slept) skips its own
// contribution and fast-forwards — the behaviour §5 prescribes for servers
// receiving partial aggregation results.
type Worker struct {
	ID    int
	SrcID uint8

	eng        *sim.Engine
	cfg        WorkerParams
	send       func(frame []byte)
	injector   *Injector
	numWorkers int

	// onIterRecv fires when the worker has received results for every block
	// of an iteration (the quantity Fig. 13 measures).
	onIterRecv func(w *Worker, iter int, at sim.Time, gradFraction float64)

	iter     int // current iteration
	maxIter  int // stop after this many iterations
	inComm   bool
	next     int // next block index to send this iteration
	pending  int // sent, result not yet received
	maxSeen  int // highest iteration observed in any result
	recv     map[int]*iterRecv
	finished map[int]bool       // iterations whose comm phase is done
	reported map[int]bool       // iterations already counted by onIterRecv
	retx     map[int]*retxTimer // armed retransmit timers by global block id
	retxFree *retxTimer         // recycled timer records

	// crashFlt schedules injected crash/rejoin; while crashed the worker
	// drops every frame and its in-flight iteration state is lost.
	crashFlt *faults.TrainInjector
	crashed  bool

	gradScratch []int32      // send-side scratch; BuildTrioML copies it out
	frame       packet.Frame // receive-side decode scratch

	// Stats
	PacketsSent   uint64
	ResultsRecv   uint64
	BlocksSkipped uint64
	Retransmits   uint64
	Crashes       uint64
	Rejoins       uint64
}

// WorkerParams describes the streaming protocol.
type WorkerParams struct {
	JobID          uint8
	Blocks         int // blocks per iteration
	GradsPerPacket int
	LastBlockGrads int // gradient count of the final block (≤ GradsPerPacket)
	Window         int
	ComputeTime    sim.Time
	Spec           packet.UDPSpec // addressing toward the aggregator

	// RetransmitAfter resends an outstanding block that has no result after
	// this long (0 disables). §7 sketches this resiliency; the aggregator's
	// source bitmask makes retransmissions idempotent, and a block whose
	// Result packet was lost is simply recreated and aged out again.
	RetransmitAfter sim.Time
}

type iterRecv struct {
	got    map[int]float64 // block index -> contribution fraction
	doneAt sim.Time
}

func newWorker(eng *sim.Engine, id int, srcID uint8, numWorkers int, cfg WorkerParams,
	injector *Injector, send func([]byte),
	onIterRecv func(*Worker, int, sim.Time, float64)) *Worker {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.LastBlockGrads == 0 {
		cfg.LastBlockGrads = cfg.GradsPerPacket
	}
	return &Worker{
		ID: id, SrcID: srcID, eng: eng, cfg: cfg, send: send,
		injector: injector, numWorkers: numWorkers, onIterRecv: onIterRecv,
		recv: make(map[int]*iterRecv), finished: make(map[int]bool),
		reported: make(map[int]bool), retx: make(map[int]*retxTimer),
	}
}

// Start launches the worker for maxIter iterations.
func (w *Worker) Start(maxIter int) {
	w.maxIter = maxIter
	w.startIteration(0)
}

func (w *Worker) startIteration(i int) {
	if i >= w.maxIter {
		return
	}
	w.iter = i
	w.inComm = false
	w.next = 0
	w.pending = 0
	dur := w.cfg.ComputeTime
	if w.injector != nil {
		dur += w.injector.Delay(i, w.ID)
	}
	if w.crashFlt != nil {
		if after, down, ok := w.crashFlt.Crash(i, w.ID); ok {
			w.eng.After(after, func() { w.crashAt(i, down) })
		}
	}
	w.eng.After(dur, func() { w.beginComm(i) })
}

// crashAt executes an injected crash: the worker loses every piece of
// in-flight iteration state (received results, armed retransmit timers)
// and goes deaf for the outage, then rejoins and restarts the iteration's
// communication phase from nothing. Already-aggregated contributions are
// re-sent on rejoin; the aggregator's source bitmask (plus §5 aging for
// blocks whose results were already multicast) keeps that convergent.
func (w *Worker) crashAt(i int, down sim.Time) {
	if w.iter != i || w.finished[i] || w.crashed {
		return // the schedule outran the run; nothing to crash
	}
	w.crashed = true
	w.Crashes++
	w.crashFlt.CountCrash()
	delete(w.recv, i)
	for _, t := range w.retx {
		t.h.Stop()
		w.dropRetx(t)
	}
	w.eng.After(down, func() { w.rejoin(i) })
}

// rejoin brings a crashed worker back: compute for the iteration is assumed
// checkpointed, so it re-enters the communication phase directly.
func (w *Worker) rejoin(i int) {
	w.crashed = false
	w.Rejoins++
	if w.iter != i {
		return
	}
	w.inComm = false
	w.next = 0
	w.pending = 0
	w.beginComm(i)
}

func (w *Worker) beginComm(i int) {
	if w.iter != i {
		return // superseded by a fast-forward
	}
	w.inComm = true
	if w.iterComplete(i) {
		// The cluster finished this iteration without us while we slept;
		// skip our contribution (§5: servers receiving partial results
		// divide by src_cnt and move on).
		w.BlocksSkipped += uint64(w.cfg.Blocks)
		w.finishComm(i)
		return
	}
	w.pump()
}

// pump keeps Window packets outstanding.
func (w *Worker) pump() {
	r := w.recvState(w.iter)
	for w.pending < w.cfg.Window && w.next < w.cfg.Blocks {
		b := w.next
		w.next++
		if _, done := r.got[b]; done {
			w.BlocksSkipped++
			continue
		}
		w.sendBlock(w.iter, b)
		w.pending++
		w.armRetransmit(w.iter, b)
	}
	w.maybeFinishComm()
}

// retxTimer is one armed retransmit: a cancellable handle plus the block it
// guards. Records recycle through Worker.retxFree so retransmit arming is
// allocation-free in steady state.
type retxTimer struct {
	w     *Worker
	iter  int
	block int
	h     sim.Handle
	next  *retxTimer
}

// retxFire resends an outstanding block and re-arms, or retires the timer if
// the worker has moved on.
func retxFire(arg any) {
	t := arg.(*retxTimer)
	w := t.w
	if w.iter != t.iter || w.finished[t.iter] {
		w.dropRetx(t)
		return
	}
	if _, done := w.recvState(t.iter).got[t.block]; done {
		w.dropRetx(t)
		return
	}
	w.Retransmits++
	w.sendBlock(t.iter, t.block)
	t.h = w.eng.AfterFunc(w.cfg.RetransmitAfter, retxFire, t)
}

// dropRetx retires a timer record and recycles it.
func (w *Worker) dropRetx(t *retxTimer) {
	delete(w.retx, t.iter*w.cfg.Blocks+t.block)
	t.w = nil
	t.h = sim.Handle{}
	t.next = w.retxFree
	w.retxFree = t
}

// armRetransmit schedules periodic resends of (iter, block); the timer is
// cancelled the moment the block's result arrives.
func (w *Worker) armRetransmit(iter, block int) {
	if w.cfg.RetransmitAfter <= 0 {
		return
	}
	t := w.retxFree
	if t == nil {
		t = &retxTimer{}
	} else {
		w.retxFree = t.next
		t.next = nil
	}
	t.w, t.iter, t.block = w, iter, block
	w.retx[iter*w.cfg.Blocks+block] = t
	t.h = w.eng.AfterFunc(w.cfg.RetransmitAfter, retxFire, t)
}

func (w *Worker) maybeFinishComm() {
	if !w.inComm || w.finished[w.iter] {
		return
	}
	if w.next >= w.cfg.Blocks && w.iterComplete(w.iter) {
		w.finishComm(w.iter)
	}
}

func (w *Worker) finishComm(i int) {
	w.finished[i] = true
	// Fast-forward past iterations the cluster already completed.
	nextIter := i + 1
	if w.maxSeen >= nextIter {
		for j := nextIter; j <= w.maxSeen; j++ {
			w.finished[j] = true
			w.BlocksSkipped += uint64(w.cfg.Blocks)
		}
		nextIter = w.maxSeen + 1
	}
	delete(w.recv, i-2) // bounded memory: results older than 2 iterations are dead
	delete(w.reported, i-2)
	w.startIteration(nextIter)
}

func (w *Worker) gradsOf(block int) int {
	if block == w.cfg.Blocks-1 {
		return w.cfg.LastBlockGrads
	}
	return w.cfg.GradsPerPacket
}

func (w *Worker) sendBlock(iter, block int) {
	n := w.gradsOf(block)
	if cap(w.gradScratch) < n {
		w.gradScratch = make([]int32, n)
	}
	grads := w.gradScratch[:n]
	for i := range grads {
		// Deterministic synthetic gradients: verifiable sums downstream.
		grads[i] = int32(w.ID + block + i)
	}
	hdr := packet.TrioML{
		JobID:   w.cfg.JobID,
		BlockID: uint32(iter*w.cfg.Blocks + block),
		SrcID:   w.SrcID,
		GenID:   uint16(iter + 1),
		Final:   block == w.cfg.Blocks-1,
	}
	w.PacketsSent++
	w.send(packet.BuildTrioML(w.cfg.Spec, hdr, grads))
}

func (w *Worker) recvState(iter int) *iterRecv {
	r := w.recv[iter]
	if r == nil {
		r = &iterRecv{got: make(map[int]float64)}
		w.recv[iter] = r
	}
	return r
}

func (w *Worker) iterComplete(iter int) bool {
	return len(w.recvState(iter).got) >= w.cfg.Blocks
}

// OnFrame ingests a frame from the worker's NIC.
func (w *Worker) OnFrame(frame []byte, at sim.Time) {
	if w.crashed {
		return // the NIC is down for the outage
	}
	f := &w.frame
	if err := packet.DecodeInto(f, frame); err != nil || !f.IsTrioML() {
		return
	}
	h := f.ML
	if h.JobID != w.cfg.JobID || h.GenID == 0 {
		return
	}
	iter := int(h.GenID) - 1
	block := int(h.BlockID) - iter*w.cfg.Blocks
	if block < 0 || block >= w.cfg.Blocks {
		return
	}
	r := w.recvState(iter)
	if _, dup := r.got[block]; dup {
		return
	}
	w.ResultsRecv++
	frac := float64(h.SrcCnt) / float64(w.numWorkers)
	if frac > 1 {
		frac = 1
	}
	r.got[block] = frac
	if t := w.retx[iter*w.cfg.Blocks+block]; t != nil {
		t.h.Stop()
		w.dropRetx(t)
	}
	if iter > w.maxSeen {
		w.maxSeen = iter
	}
	if iter == w.iter && w.inComm && block < w.next {
		w.pending--
	}
	if len(r.got) == w.cfg.Blocks {
		r.doneAt = at
		// A crash wipes recv state, so a rejoined worker can re-complete an
		// iteration it already reported; count each (worker, iteration) once.
		if w.onIterRecv != nil && !w.reported[iter] {
			w.reported[iter] = true
			var sum float64
			for _, fr := range r.got {
				sum += fr
			}
			w.onIterRecv(w, iter, at, sum/float64(w.cfg.Blocks))
		}
	}
	if iter == w.iter && w.inComm {
		w.pump()
	}
}
