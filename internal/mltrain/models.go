// Package mltrain models the distributed data-parallel training workloads of
// §6: six workers training ResNet50, DenseNet161, and VGG11 on ImageNet,
// streaming gradients through an in-network aggregator (Trio-ML or SwitchML)
// or an ideal NCCL ring. Gradient traffic is simulated packet-by-packet
// through the device models; GPU compute and statistical efficiency are
// modelled analytically (per DESIGN.md, real DNN arithmetic contributes
// nothing to the evaluation's shape).
package mltrain

import (
	"math"

	"github.com/trioml/triogo/internal/sim"
)

// Model describes one DNN workload (Table 1 of the paper), extended with the
// timing and convergence parameters the simulation needs.
type Model struct {
	Name      string
	SizeMB    int // gradient/model size
	BatchSize int // per GPU
	Dataset   string

	// ComputeTime is the GPU forward+backward time per iteration,
	// calibrated so the no-straggler iteration times land in the ranges of
	// Fig. 13 (Ideal ≈ 105 / 230 / 560 ms).
	ComputeTime sim.Time

	// TargetAcc is the paper's target validation accuracy (Fig. 12) and
	// BaseIters the iterations a full-gradient run needs to reach it.
	TargetAcc float64
	BaseIters int

	// accStart/accCeil anchor the validation-accuracy curve.
	accStart, accCeil float64
}

// Models returns the three workloads of Table 1.
func Models() []Model {
	return []Model{
		{
			Name: "ResNet50", SizeMB: 98, BatchSize: 64, Dataset: "ImageNet",
			ComputeTime: 90 * sim.Millisecond,
			TargetAcc:   90, BaseIters: 250_000, accStart: 20, accCeil: 94,
		},
		{
			Name: "VGG11", SizeMB: 507, BatchSize: 128, Dataset: "ImageNet",
			ComputeTime: 480 * sim.Millisecond,
			TargetAcc:   80, BaseIters: 50_000, accStart: 20, accCeil: 84,
		},
		{
			Name: "DenseNet161", SizeMB: 109, BatchSize: 64, Dataset: "ImageNet",
			ComputeTime: 215 * sim.Millisecond,
			TargetAcc:   90, BaseIters: 59_000, accStart: 20, accCeil: 94,
		},
	}
}

// ModelByName looks a workload up by name.
func ModelByName(name string) (Model, bool) {
	for _, m := range Models() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Gradients reports the model's gradient count (4-byte gradients).
func (m Model) Gradients() int { return m.SizeMB * 1_000_000 / 4 }

// Bytes reports the model size in bytes.
func (m Model) Bytes() int { return m.SizeMB * 1_000_000 }

// TypicalIter estimates the no-straggler iteration time at the given link
// bandwidth: compute plus streaming the gradients once through the network.
// The paper's straggler injector draws slowdowns relative to this value.
func (m Model) TypicalIter(linkBandwidth uint64) sim.Time {
	comm := sim.Time(uint64(m.Bytes()) * 8 * uint64(sim.Second) / linkBandwidth)
	return m.ComputeTime + comm
}

// Accuracy models top-5 validation accuracy after effIters effective
// full-gradient iterations: an exponential approach to accCeil calibrated so
// the curve crosses TargetAcc at BaseIters.
func (m Model) Accuracy(effIters float64) float64 {
	if effIters <= 0 {
		return m.accStart
	}
	r := math.Log((m.accCeil-m.accStart)/(m.accCeil-m.TargetAcc)) / float64(m.BaseIters)
	return m.accCeil - (m.accCeil-m.accStart)*math.Exp(-r*effIters)
}

// ItersToAccuracy inverts Accuracy: effective iterations needed to reach
// target (clamped into the curve's range).
func (m Model) ItersToAccuracy(target float64) float64 {
	if target <= m.accStart {
		return 0
	}
	if target >= m.accCeil {
		return math.Inf(1)
	}
	r := math.Log((m.accCeil-m.accStart)/(m.accCeil-m.TargetAcc)) / float64(m.BaseIters)
	return math.Log((m.accCeil-m.accStart)/(m.accCeil-target)) / r
}

// StatEfficiency maps the aggregated-gradient fraction of an iteration to
// its relative convergence progress. Dropping one worker's mini-batch
// shrinks the global batch; in the noise-dominated regime of large-batch
// ImageNet training the progress penalty is well under linear, so we model
// progress ∝ sqrt(fraction). (The paper observes Trio-ML reaching the same
// accuracy targets despite partial aggregation, i.e. a mild penalty.)
func StatEfficiency(gradFraction float64) float64 {
	if gradFraction <= 0 {
		return 0
	}
	if gradFraction >= 1 {
		return 1
	}
	return math.Sqrt(gradFraction)
}
