package mltrain

import (
	"testing"

	"github.com/trioml/triogo/internal/packet"
	"github.com/trioml/triogo/internal/sim"
)

// workerHarness drives a Worker directly, playing the role of the
// aggregation device: it records sent frames and lets tests inject results.
type workerHarness struct {
	eng    *sim.Engine
	w      *Worker
	sent   []packet.TrioML
	frames [][]byte
	done   []int // iterations reported complete
}

func newWorkerHarness(t *testing.T, params WorkerParams, p float64) *workerHarness {
	t.Helper()
	h := &workerHarness{eng: sim.NewEngine()}
	var injector *Injector
	if p > 0 {
		injector = NewInjectorPattern(p, 2, 100*sim.Millisecond, 5, SingleVictim)
	}
	h.w = newWorker(h.eng, 0, 0, 2, params, injector,
		func(frame []byte) {
			f, err := packet.Decode(frame)
			if err != nil || !f.IsTrioML() {
				t.Fatalf("worker sent bad frame: %v", err)
			}
			h.sent = append(h.sent, *f.ML)
			h.frames = append(h.frames, frame)
		},
		func(_ *Worker, iter int, _ sim.Time, _ float64) { h.done = append(h.done, iter) })
	return h
}

// result injects an aggregation result for (iter, block).
func (h *workerHarness) result(iter, block int, srcCnt uint8, blocks int) {
	hdr := packet.TrioML{
		JobID: 1, BlockID: uint32(iter*blocks + block), SrcID: 0xFF,
		GenID: uint16(iter + 1), SrcCnt: srcCnt, GradCnt: 4,
	}
	frame := packet.BuildTrioML(packet.UDPSpec{SrcPort: 1}, hdr, make([]int32, 4))
	h.w.OnFrame(frame, h.eng.Now())
}

func baseParams() WorkerParams {
	return WorkerParams{
		JobID: 1, Blocks: 4, GradsPerPacket: 4, Window: 2,
		ComputeTime: 10 * sim.Millisecond,
	}
}

func TestWorkerWindowLimitsOutstanding(t *testing.T) {
	h := newWorkerHarness(t, baseParams(), 0)
	h.w.Start(1)
	h.eng.Run()
	// Compute done at 10 ms, then only Window=2 blocks outstanding.
	if len(h.sent) != 2 {
		t.Fatalf("sent = %d, want window of 2", len(h.sent))
	}
	h.result(0, 0, 2, 4)
	if len(h.sent) != 3 {
		t.Fatalf("sent = %d after first result", len(h.sent))
	}
	h.result(0, 1, 2, 4)
	h.result(0, 2, 2, 4)
	h.result(0, 3, 2, 4)
	if len(h.done) != 1 || h.done[0] != 0 {
		t.Fatalf("done = %v", h.done)
	}
}

func TestWorkerBlockIDsEncodeIteration(t *testing.T) {
	h := newWorkerHarness(t, baseParams(), 0)
	h.w.Start(2)
	h.eng.Run()
	for b := 0; b < 4; b++ {
		h.result(0, b, 2, 4)
	}
	h.eng.Run() // compute for iteration 1
	if len(h.sent) < 5 {
		t.Fatalf("sent = %d", len(h.sent))
	}
	first := h.sent[0]
	if first.BlockID != 0 || first.GenID != 1 || !h.sent[3].Final == (h.sent[3].BlockID%4 == 3) {
		t.Fatalf("hdr = %+v", first)
	}
	iter1 := h.sent[4]
	if iter1.BlockID != 4 || iter1.GenID != 2 {
		t.Fatalf("iteration 1 first block = %+v", iter1)
	}
}

func TestWorkerSkipsBlocksAlreadyAnswered(t *testing.T) {
	// Results for blocks 2 and 3 arrive while the worker is still
	// computing; it must not send them.
	h := newWorkerHarness(t, baseParams(), 0)
	h.w.Start(1)
	h.eng.RunUntil(5 * sim.Millisecond) // mid-compute
	h.result(0, 2, 1, 4)
	h.result(0, 3, 1, 4)
	h.eng.Run() // comm starts: window holds blocks 0 and 1
	h.result(0, 0, 2, 4)
	h.result(0, 1, 2, 4) // pump now reaches blocks 2 and 3 — both answered
	for _, s := range h.sent {
		if s.BlockID == 2 || s.BlockID == 3 {
			t.Fatalf("worker sent already-answered block %d", s.BlockID)
		}
	}
	if h.w.BlocksSkipped != 2 {
		t.Fatalf("skipped = %d", h.w.BlocksSkipped)
	}
	if len(h.done) != 1 {
		t.Fatalf("done = %v", h.done)
	}
}

func TestWorkerFastForwardsPastCompletedIterations(t *testing.T) {
	// While the worker computes iteration 0, the cluster finishes
	// iterations 0 AND 1 (degraded). On waking it must skip both and start
	// iteration 2.
	h := newWorkerHarness(t, baseParams(), 0)
	h.w.Start(3)
	h.eng.RunUntil(5 * sim.Millisecond)
	for b := 0; b < 4; b++ {
		h.result(0, b, 1, 4)
		h.result(1, b, 1, 4)
	}
	h.eng.Run() // wake at 10 ms, fast-forward, compute iter 2, send
	if len(h.done) != 2 {
		t.Fatalf("done = %v", h.done)
	}
	// Everything sent belongs to iteration 2 (gen 3).
	for _, s := range h.sent {
		if s.GenID != 3 {
			t.Fatalf("sent gen %d after fast-forward", s.GenID)
		}
	}
	if h.w.BlocksSkipped != 8 {
		t.Fatalf("skipped = %d, want both iterations' blocks", h.w.BlocksSkipped)
	}
}

func TestWorkerIgnoresStaleAndAlienResults(t *testing.T) {
	h := newWorkerHarness(t, baseParams(), 0)
	h.w.Start(1)
	h.eng.Run()
	before := h.w.ResultsRecv
	// Wrong job.
	hdr := packet.TrioML{JobID: 9, BlockID: 0, GenID: 1, SrcCnt: 2, GradCnt: 4}
	h.w.OnFrame(packet.BuildTrioML(packet.UDPSpec{SrcPort: 1}, hdr, make([]int32, 4)), 0)
	// Gen 0 (invalid).
	hdr = packet.TrioML{JobID: 1, BlockID: 0, GenID: 0, SrcCnt: 2, GradCnt: 4}
	h.w.OnFrame(packet.BuildTrioML(packet.UDPSpec{SrcPort: 1}, hdr, make([]int32, 4)), 0)
	// Block index out of range for its generation.
	hdr = packet.TrioML{JobID: 1, BlockID: 99, GenID: 1, SrcCnt: 2, GradCnt: 4}
	h.w.OnFrame(packet.BuildTrioML(packet.UDPSpec{SrcPort: 1}, hdr, make([]int32, 4)), 0)
	// Duplicate of a real result counts once.
	h.result(0, 0, 2, 4)
	h.result(0, 0, 2, 4)
	if h.w.ResultsRecv != before+1 {
		t.Fatalf("recv = %d, want exactly one accepted", h.w.ResultsRecv-before)
	}
}

func TestWorkerRetransmitStopsAfterResult(t *testing.T) {
	params := baseParams()
	params.Window = 4
	params.RetransmitAfter = 5 * sim.Millisecond
	h := newWorkerHarness(t, params, 0)
	h.w.Start(1)
	h.eng.RunUntil(12 * sim.Millisecond) // comm started at 10 ms
	if len(h.sent) != 4 {
		t.Fatalf("sent = %d", len(h.sent))
	}
	// No results: retransmissions fire at ~15, 20 ms.
	h.eng.RunUntil(21 * sim.Millisecond)
	if h.w.Retransmits < 4 {
		t.Fatalf("retransmits = %d", h.w.Retransmits)
	}
	for b := 0; b < 4; b++ {
		h.result(0, b, 2, 4)
	}
	at := h.w.Retransmits
	h.eng.RunUntil(100 * sim.Millisecond)
	if h.w.Retransmits != at {
		t.Fatalf("retransmissions continued after completion: %d -> %d", at, h.w.Retransmits)
	}
}

func TestWorkerGradFractionReported(t *testing.T) {
	var fracs []float64
	h := newWorkerHarness(t, baseParams(), 0)
	h.w.onIterRecv = func(_ *Worker, _ int, _ sim.Time, f float64) { fracs = append(fracs, f) }
	h.w.Start(1)
	h.eng.Run()
	// Two degraded results (1 of 2 sources) and two full ones.
	h.result(0, 0, 1, 4)
	h.result(0, 1, 1, 4)
	h.result(0, 2, 2, 4)
	h.result(0, 3, 2, 4)
	if len(fracs) != 1 {
		t.Fatalf("fracs = %v", fracs)
	}
	if fracs[0] != 0.75 { // (0.5+0.5+1+1)/4
		t.Fatalf("fraction = %v, want 0.75", fracs[0])
	}
}
