package replay

import (
	"math/rand"
	"testing"
)

func TestPutLookupDelete(t *testing.T) {
	c := New[string](4)
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("lookup on empty cache hit")
	}
	c.Put(1, 7, "a")
	v, gen, ok := c.Lookup(1)
	if !ok || v != "a" || gen != 7 {
		t.Fatalf("lookup = (%q, %d, %v)", v, gen, ok)
	}
	c.Delete(1)
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("lookup after delete hit")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New[int](3)
	for k := uint64(1); k <= 4; k++ {
		c.Put(k, 0, int(k))
	}
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for k := uint64(2); k <= 4; k++ {
		if _, _, ok := c.Lookup(k); !ok {
			t.Fatalf("key %d evicted early", k)
		}
	}
	if c.Len() != 3 || c.Window() != 3 {
		t.Fatalf("len = %d window = %d", c.Len(), c.Window())
	}
}

// TestGenerationDisambiguation pins the property the ring-slot generation
// exists for: evicting a stale slot must not delete the fresher re-serve of
// the same key.
func TestGenerationDisambiguation(t *testing.T) {
	c := New[int](2)
	c.Put(1, 3, 30) // ring: [(1,3) _]
	c.Put(1, 7, 70) // overwrites in place; ring: [(1,3) (1,7)]
	c.Put(2, 0, 20) // evicts slot (1,3) — must NOT drop the gen-7 entry
	if v, gen, ok := c.Lookup(1); !ok || gen != 7 || v != 70 {
		t.Fatalf("gen-7 entry lost to stale slot eviction: (%d, %d, %v)", v, gen, ok)
	}
	c.Put(3, 0, 33) // evicts slot (1,7) — now the entry really goes
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("gen-7 entry survived its own slot's eviction")
	}
}

// legacyShard is a verbatim transliteration of hostagg's pre-extraction
// served/ring/ringHead logic (shard.cacheServedLocked and the handle()
// lookup), kept here as the migration-equivalence oracle.
type legacyShard struct {
	served   map[uint64]*legacyServed
	ring     []legacySlot
	ringHead int
}

type legacyServed struct {
	gen uint16
	val int
}

type legacySlot struct {
	key uint64
	gen uint16
}

func newLegacy(window int) *legacyShard {
	return &legacyShard{
		served: make(map[uint64]*legacyServed, window),
		ring:   make([]legacySlot, window),
	}
}

func (sh *legacyShard) cacheServedLocked(k uint64, gen uint16, val int) {
	slot := &sh.ring[sh.ringHead]
	if old := sh.served[slot.key]; old != nil && old.gen == slot.gen {
		delete(sh.served, slot.key)
	}
	*slot = legacySlot{key: k, gen: gen}
	sh.ringHead++
	if sh.ringHead == len(sh.ring) {
		sh.ringHead = 0
	}
	sh.served[k] = &legacyServed{gen: gen, val: val}
}

// TestMigrationEquivalence drives the extracted Cache and the legacy hostagg
// logic with the same random operation stream and asserts every observable
// (hit/miss, value, generation, live count) matches at every step.
func TestMigrationEquivalence(t *testing.T) {
	for _, window := range []int{1, 2, 7, 64} {
		rng := rand.New(rand.NewSource(int64(window) * 12345))
		c := New[int](window)
		l := newLegacy(window)
		for op := 0; op < 20000; op++ {
			k := uint64(rng.Intn(2 * window))
			switch rng.Intn(4) {
			case 0, 1: // put
				gen := uint16(rng.Intn(8))
				val := rng.Int()
				c.Put(k, gen, val)
				l.cacheServedLocked(k, gen, val)
			case 2: // lookup
				v, gen, ok := c.Lookup(k)
				lv := l.served[k]
				if ok != (lv != nil) {
					t.Fatalf("window %d op %d: hit mismatch key %d: new=%v legacy=%v", window, op, k, ok, lv != nil)
				}
				if ok && (v != lv.val || gen != lv.gen) {
					t.Fatalf("window %d op %d: value mismatch key %d: new=(%d,%d) legacy=(%d,%d)",
						window, op, k, v, gen, lv.val, lv.gen)
				}
			case 3: // delete (the "newer generation reuses the id" path)
				c.Delete(k)
				delete(l.served, k)
			}
			if c.Len() != len(l.served) {
				t.Fatalf("window %d op %d: len mismatch: new=%d legacy=%d", window, op, c.Len(), len(l.served))
			}
		}
	}
}

func TestNewPanicsOnZeroWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}
