// Package replay provides a small, generic served-result replay cache: a
// fixed-size window of recently served values keyed by a 64-bit key and a
// 16-bit generation, with FIFO eviction.
//
// The structure was extracted from hostagg's ReplayWindow (PR 4), where it
// answers retransmits for already-served aggregation blocks, and is reused
// verbatim by apps/netrpc's host-side result store. The design constraints
// it inherits:
//
//   - Bounded memory: the window is fixed at construction; inserting the
//     (window+1)-th entry evicts the oldest, whatever its age. There is no
//     per-entry timer — callers that want TTL aging layer it on top (the
//     PFE-resident variant uses the hash engine's REF-flag scan instead).
//   - Generation disambiguation: a key may be re-served under a newer
//     generation while an old ring slot still names it. Each ring slot
//     records the generation it inserted, and eviction only deletes the
//     map entry when the generations still match — evicting slot
//     (k, gen=3) must not drop the fresher (k, gen=7) entry that
//     overwrote it.
//
// The cache is not goroutine-safe; hostagg guards each instance with its
// shard lock, netrpc with the server loop.
package replay

// Cache retains the last Window distinct inserts, mapping key -> (gen, V).
type Cache[V any] struct {
	entries map[uint64]*entry[V]
	ring    []slot
	head    int
}

type entry[V any] struct {
	gen uint16
	val V
}

type slot struct {
	key uint64
	gen uint16
}

// New returns a cache retaining the last window inserts. window must be
// positive — callers model "replay disabled" as a nil *Cache, matching
// hostagg's ReplayWindow == 0.
func New[V any](window int) *Cache[V] {
	if window <= 0 {
		panic("replay: window must be positive")
	}
	return &Cache[V]{
		entries: make(map[uint64]*entry[V], window),
		ring:    make([]slot, window),
	}
}

// Put inserts (key, gen, v), evicting the oldest ring slot. Re-inserting a
// live key overwrites its value and generation in place; the stale ring
// slot left behind is neutralized by the generation check at eviction time.
func (c *Cache[V]) Put(key uint64, gen uint16, v V) {
	s := &c.ring[c.head]
	if old := c.entries[s.key]; old != nil && old.gen == s.gen {
		delete(c.entries, s.key)
	}
	*s = slot{key: key, gen: gen}
	c.head++
	if c.head == len(c.ring) {
		c.head = 0
	}
	c.entries[key] = &entry[V]{gen: gen, val: v}
}

// Lookup returns the cached value and its generation.
func (c *Cache[V]) Lookup(key uint64) (V, uint16, bool) {
	if e := c.entries[key]; e != nil {
		return e.val, e.gen, true
	}
	var zero V
	return zero, 0, false
}

// Delete drops the entry for key, if any. The ring slot that inserted it
// stays behind and is neutralized by the generation check — or, if the key
// is re-inserted under the same generation before that slot comes around,
// the slot simply evicts the re-insert early, which the window never
// promised to avoid.
func (c *Cache[V]) Delete(key uint64) {
	delete(c.entries, key)
}

// Len reports the number of live entries (≤ Window).
func (c *Cache[V]) Len() int { return len(c.entries) }

// Window reports the configured window size.
func (c *Cache[V]) Window() int { return len(c.ring) }
