package pfe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/trioml/triogo/internal/obs"
	"github.com/trioml/triogo/internal/sim"
)

func TestRegisterObsExportsPFEMetrics(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{ID: 2, NumPPEs: 2, ThreadsPerPPE: 2})
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.ChargeInstr(50)
		ctx.MemWrite(64, []byte("01234567"), false)
		ctx.Forward(0)
	}))
	reg := obs.NewRegistry()
	p.RegisterObs(reg)

	for i := 0; i < 8; i++ {
		p.Inject(0, uint64(i), frameOfSize(300, byte(i)))
	}
	eng.Run()

	snap := reg.Snapshot()
	want := map[string]float64{
		`triogo_pfe_packets_dispatched_total{pfe="2"}`: 8,
		`triogo_pfe_packets_forwarded_total{pfe="2"}`:  8,
		`triogo_pfe_thread_capacity{pfe="2"}`:          4,
		`triogo_pfe_work_queue_depth{pfe="2"}`:         0,
	}
	for name, v := range want {
		if got := snap[name]; got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	// 8 simultaneous injections over a 4-thread pool must saturate it and
	// queue the rest.
	if got := snap[`triogo_pfe_busy_threads_peak{pfe="2"}`]; got != 4.0 {
		t.Errorf("busy threads peak = %v, want 4", got)
	}
	if got := snap[`triogo_pfe_thread_utilization_peak{pfe="2"}`]; got != 1.0 {
		t.Errorf("peak utilization = %v, want 1", got)
	}
	if got := snap[`triogo_pfe_work_queue_depth_peak{pfe="2"}`]; got.(float64) < 4 {
		t.Errorf("queue depth peak = %v, want >= 4", got)
	}
}

// TestSetTraceRecordsSpans drives packets through a traced PFE and checks
// the emitted chrome-trace events: valid JSON, the expected categories, and
// PPE spans that never precede their packet's dispatch-queue span.
func TestSetTraceRecordsSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf, 0)

	eng := sim.NewEngine()
	p := New(eng, Config{ID: 1, NumPPEs: 1, ThreadsPerPPE: 2, NumPorts: 4})
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.ChargeInstr(20)
		ctx.MemRead(128, 16)
		ctx.HashInsert(ctx.Packet().Flow, 1)
		ctx.ReadTail(0, 16)
		ctx.Forward(1)
	}))
	p.SetTrace(tr)

	for i := 0; i < 6; i++ {
		p.Inject(0, uint64(i), frameOfSize(400, byte(i)))
	}
	eng.Run()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Pid  int64   `json:"pid"`
		Tid  int64   `json:"tid"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range events {
		if e.Ph == "M" {
			continue
		}
		counts[e.Cat+"/"+e.Name]++
		if e.Pid != 1 {
			t.Fatalf("event %s/%s on pid %d, want 1", e.Cat, e.Name, e.Pid)
		}
		if e.Dur < 0 {
			t.Fatalf("event %s/%s has negative duration %v", e.Cat, e.Name, e.Dur)
		}
	}
	for _, k := range []string{
		"dispatch/queue", "ppe/packet", "rmw/read", "hash/insert",
		"pbuf/tail_read", "egress/tx", "pfe/work_queue_depth",
	} {
		if counts[k] == 0 {
			t.Errorf("no %s events recorded (have %v)", k, counts)
		}
	}
	if counts["ppe/packet"] != 6 {
		t.Errorf("ppe/packet spans = %d, want 6", counts["ppe/packet"])
	}
}

// TestUntracedPFEMatchesTraced pins that attaching a trace observes without
// perturbing: identical stats and virtual finish time either way.
func TestUntracedPFEMatchesTraced(t *testing.T) {
	run := func(tr *obs.Trace) (Stats, sim.Time) {
		eng := sim.NewEngine()
		p := New(eng, Config{NumPPEs: 1, ThreadsPerPPE: 2})
		p.SetApp(AppFunc(func(ctx *Ctx) {
			ctx.ChargeInstr(30)
			ctx.MemWrite(256, []byte("abcdefgh"), true)
			ctx.Forward(2)
		}))
		p.SetTrace(tr)
		for i := 0; i < 5; i++ {
			p.Inject(0, uint64(i), frameOfSize(250, byte(i)))
		}
		eng.Run()
		return p.Stats(), eng.Now()
	}

	plainStats, plainEnd := run(nil)
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf, 0)
	tracedStats, tracedEnd := run(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if plainStats != tracedStats {
		t.Errorf("stats diverge: untraced %+v, traced %+v", plainStats, tracedStats)
	}
	if plainEnd != tracedEnd {
		t.Errorf("finish time diverges: untraced %v, traced %v", plainEnd, tracedEnd)
	}
	if !strings.Contains(buf.String(), `"cat":"ppe"`) {
		t.Error("traced run recorded no ppe spans")
	}
}
