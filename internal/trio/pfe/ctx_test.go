package pfe

import (
	"bytes"
	"testing"

	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/smem"
)

// runApp drives one packet through a PFE with the given app body and
// returns the PFE for inspection.
func runApp(t *testing.T, frame []byte, body func(ctx *Ctx)) *PFE {
	t.Helper()
	eng := sim.NewEngine()
	p := New(eng, Config{})
	p.SetApp(AppFunc(body))
	p.Inject(0, 1, frame)
	eng.Run()
	return p
}

func TestCtxMemReadWriteRoundTrip(t *testing.T) {
	var got []byte
	var stalled sim.Time
	p := runApp(t, frameOfSize(64, 0), func(ctx *Ctx) {
		addr := ctx.pfe.Mem.Alloc(smem.TierDRAM, 64)
		ctx.MemWrite(addr, bytes.Repeat([]byte{7}, 16), false)
		got = ctx.MemRead(addr, 16)
		stalled = ctx.Stats().SyncStall
		ctx.Consume()
	})
	_ = p
	if !bytes.Equal(got, bytes.Repeat([]byte{7}, 16)) {
		t.Fatalf("got % x", got)
	}
	// Two synchronous DRAM round trips stall the thread.
	if stalled < 700*sim.Nanosecond {
		t.Fatalf("sync stall = %v, want ≈2x 400 ns", stalled)
	}
}

func TestCtxAsyncWriteDoesNotStall(t *testing.T) {
	var stalled sim.Time
	runApp(t, frameOfSize(64, 0), func(ctx *Ctx) {
		addr := ctx.pfe.Mem.Alloc(smem.TierDRAM, 64)
		ctx.MemWrite(addr, make([]byte, 64), true)
		stalled = ctx.Stats().SyncStall
		ctx.Drop()
	})
	if stalled != 0 {
		t.Fatalf("async write stalled %v", stalled)
	}
}

func TestCtxVectorOpsAndCounter(t *testing.T) {
	var vals []int32
	var pkts, byteCnt uint64
	runApp(t, frameOfSize(64, 0), func(ctx *Ctx) {
		buf := ctx.pfe.Mem.Alloc(smem.TierDRAM, 64)
		cnt := ctx.pfe.Mem.Alloc(smem.TierSRAM, 16)
		ctx.AddVector32(buf, []int32{1, 2, 3, 4})
		ctx.AddVector32(buf, []int32{10, 20, 30, 40})
		vals = ctx.ReadVector32(buf, 4)
		ctx.CounterInc(cnt, 500)
		pkts, byteCnt = ctx.pfe.Mem.Counter(cnt)
		ctx.Consume()
	})
	want := []int32{11, 22, 33, 44}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v", vals)
		}
	}
	if pkts != 1 || byteCnt != 500 {
		t.Fatalf("counter = (%d,%d)", pkts, byteCnt)
	}
}

func TestCtxHashOps(t *testing.T) {
	var beforeInsert, afterInsert, afterDelete bool
	var val uint64
	runApp(t, frameOfSize(64, 0), func(ctx *Ctx) {
		_, beforeInsert = ctx.HashLookup(42)
		ctx.HashInsert(42, 777)
		val, afterInsert = ctx.HashLookup(42)
		ctx.HashDelete(42)
		_, afterDelete = ctx.HashLookup(42)
		ctx.Consume()
	})
	if beforeInsert || !afterInsert || afterDelete || val != 777 {
		t.Fatalf("hash sequence = %v %v %v val=%d", beforeInsert, afterInsert, afterDelete, val)
	}
}

func TestCtxWriteTailVisibleInForwardedFrame(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []byte
	p.SetOutput(func(_ int, frame []byte, _ sim.Time) { got = frame })
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.WriteTail(10, []byte{0xAA, 0xBB})
		ctx.WriteTail(-1, []byte{1})   // clipped: no-op
		ctx.WriteTail(9999, []byte{1}) // beyond tail: no-op
		ctx.Forward(0)
	}))
	p.Inject(0, 1, frameOfSize(300, 0x11))
	eng.Run()
	if got[192+10] != 0xAA || got[192+11] != 0xBB {
		t.Fatalf("tail write lost: % x", got[200:204])
	}
	if got[0] != 0x11 {
		t.Fatal("head disturbed")
	}
}

func TestCtxSetHeadAndFullFrame(t *testing.T) {
	var full []byte
	var frameLen int
	runApp(t, frameOfSize(300, 0x22), func(ctx *Ctx) {
		newHead := append([]byte{0xEE}, ctx.Head()[1:]...)
		ctx.SetHead(newHead)
		full = ctx.FullFrame()
		frameLen = ctx.FrameLen()
		ctx.Consume()
	})
	if frameLen != 300 || len(full) != 300 {
		t.Fatalf("lengths = %d/%d", frameLen, len(full))
	}
	if full[0] != 0xEE || full[200] != 0x22 {
		t.Fatalf("full frame = %x...%x", full[0], full[200])
	}
}

func TestCtxChargeCyclesAdvancesClock(t *testing.T) {
	var before, after sim.Time
	runApp(t, frameOfSize(64, 0), func(ctx *Ctx) {
		before = ctx.Now()
		ctx.ChargeCycles(100)
		after = ctx.Now()
		ctx.Drop()
	})
	if after-before != 100*sim.Nanosecond {
		t.Fatalf("charged %v for 100 cycles at 1 ns", after-before)
	}
}

func TestCtxPacketAccessor(t *testing.T) {
	var flow uint64
	var isTimer bool
	eng := sim.NewEngine()
	p := New(eng, Config{})
	p.SetApp(AppFunc(func(ctx *Ctx) {
		flow = ctx.Packet().Flow
		ctx.Drop()
	}))
	p.StartTimerThreads(1, sim.Millisecond, func(ctx *Ctx, _ int) {
		isTimer = ctx.Packet() == nil
	})
	p.Inject(0, 77, frameOfSize(64, 0))
	eng.RunUntil(2 * sim.Millisecond)
	if flow != 77 {
		t.Fatalf("flow = %d", flow)
	}
	if !isTimer {
		t.Fatal("timer thread saw a packet")
	}
}

func TestCtxEmitInvalidPortPanics(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{NumPorts: 2})
	panicked := false
	p.SetApp(AppFunc(func(ctx *Ctx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
			ctx.Drop()
		}()
		ctx.Emit(5, []byte{1})
	}))
	p.Inject(0, 1, frameOfSize(64, 0))
	eng.Run()
	if !panicked {
		t.Fatal("invalid emit port accepted")
	}
}
