package pfe

import (
	"fmt"

	"github.com/trioml/triogo/internal/obs"
)

// RegisterObs exports the PFE's counters into a metrics registry, labelled
// pfe="<id>" so a multi-PFE chassis keeps its engines apart. The
// func-backed series read simulator state; scrape when the simulation is
// quiescent (see sim.Engine.RegisterObs). The shared-memory system's
// series are registered alongside via Mem.RegisterObs.
func (p *PFE) RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	l := fmt.Sprintf("pfe=%q", fmt.Sprint(p.Cfg.ID))
	counter := func(name, unit, help string, fn func() uint64) {
		r.CounterFunc(obs.Desc{Name: name, Unit: unit, Help: help, Labels: l}, fn)
	}
	gauge := func(name, unit, help string, fn func() float64) {
		r.GaugeFunc(obs.Desc{Name: name, Unit: unit, Help: help, Labels: l}, fn)
	}
	counter("triogo_pfe_packets_dispatched_total", "packets",
		"Packets split into head and tail and handed to a PPE thread.",
		func() uint64 { return p.stats.Dispatched })
	counter("triogo_pfe_packets_forwarded_total", "packets",
		"Packets whose thread verdict was forward.",
		func() uint64 { return p.stats.Forwarded })
	counter("triogo_pfe_packets_dropped_total", "packets",
		"Packets whose thread verdict was drop.",
		func() uint64 { return p.stats.Dropped })
	counter("triogo_pfe_packets_consumed_total", "packets",
		"Packets absorbed into shared state (aggregation contributions).",
		func() uint64 { return p.stats.Consumed })
	counter("triogo_pfe_packets_emitted_total", "packets",
		"New packets created by applications (aggregation results).",
		func() uint64 { return p.stats.Emitted })
	counter("triogo_pfe_timer_firings_total", "firings",
		"Timer-thread work items executed on the PPE pool.",
		func() uint64 { return p.stats.TimerFirings })
	counter("triogo_pfe_instructions_total", "instructions",
		"Micro-instructions charged by PPE threads.",
		func() uint64 { return p.stats.Instructions })
	counter("triogo_pfe_bytes_out_total", "bytes",
		"Bytes serialized onto egress ports.",
		func() uint64 { return p.stats.BytesOut })
	gauge("triogo_pfe_work_queue_depth", "items",
		"Dispatch work items waiting for a free PPE thread.",
		func() float64 { return float64(len(p.queue) - p.qhead) })
	gauge("triogo_pfe_work_queue_depth_peak", "items",
		"High-water dispatch queue depth.",
		func() float64 { return float64(p.stats.MaxQueued) })
	gauge("triogo_pfe_busy_threads", "threads",
		"PPE threads currently executing.",
		func() float64 { return float64(p.BusyThreads()) })
	gauge("triogo_pfe_busy_threads_peak", "threads",
		"High-water busy PPE thread count.",
		func() float64 { return float64(p.stats.PeakBusy) })
	gauge("triogo_pfe_thread_capacity", "threads",
		"Total PPE thread pool size (NumPPEs x ThreadsPerPPE).",
		func() float64 { return float64(p.pool.cap) })
	gauge("triogo_pfe_thread_utilization_peak", "fraction",
		"Peak busy threads over capacity: per-PPE utilization high-water.",
		func() float64 { return float64(p.stats.PeakBusy) / float64(p.pool.cap) })
}

// SetTrace attaches a chrome-trace recorder. Every PFE span lands in the
// trace's process p.Cfg.ID: dispatch queueing on tid 0, PPE thread
// occupancy on tid 1..cap (the index of the busy slot, so stacked tracks
// read as pool utilization), RMW/hash/packet-buffer XTXNs on the issuing
// thread's track, and egress serialization on tid egressTidBase+port.
// Pass nil to detach.
func (p *PFE) SetTrace(t *obs.Trace) {
	p.trace = t
	if t == nil {
		return
	}
	pid := int64(p.Cfg.ID)
	t.ProcessName(pid, fmt.Sprintf("pfe%d", p.Cfg.ID))
	t.ThreadName(pid, 0, "dispatch")
	for port := 0; port < p.Cfg.NumPorts; port++ {
		t.ThreadName(pid, egressTidBase+int64(port), fmt.Sprintf("egress port %d", port))
	}
}

// egressTidBase keeps egress tracks clear of the PPE slot tracks (tid
// 1..pool.cap; the pool caps out well below this).
const egressTidBase int64 = 1 << 20
