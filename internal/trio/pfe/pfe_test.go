package pfe

import (
	"testing"

	"github.com/trioml/triogo/internal/microcode"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/hasheng"
)

type delivered struct {
	port  int
	frame []byte
	at    sim.Time
}

func collector(out *[]delivered) Output {
	return func(port int, frame []byte, at sim.Time) {
		*out = append(*out, delivered{port, frame, at})
	}
}

func frameOfSize(n int, tag byte) []byte {
	f := make([]byte, n)
	for i := range f {
		f[i] = tag
	}
	return f
}

func TestForwardDeliversFullFrame(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.ChargeInstr(10)
		ctx.Forward(3)
	}))
	frame := frameOfSize(500, 0xAB) // head 192 + tail 308
	p.Inject(0, 1, frame)
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d frames", len(got))
	}
	if got[0].port != 3 || len(got[0].frame) != 500 {
		t.Fatalf("delivered %d bytes on port %d", len(got[0].frame), got[0].port)
	}
	for i, b := range got[0].frame {
		if b != 0xAB {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	st := p.Stats()
	if st.Dispatched != 1 || st.Forwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDropProducesNoOutput(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	p.SetApp(AppFunc(func(ctx *Ctx) { ctx.Drop() }))
	p.Inject(0, 1, frameOfSize(100, 1))
	eng.Run()
	if len(got) != 0 {
		t.Fatal("dropped packet egressed")
	}
	if p.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestHeadTailSplitAt192(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var headLen, tailLen int
	p.SetApp(AppFunc(func(ctx *Ctx) {
		headLen, tailLen = len(ctx.Head()), ctx.TailLen()
		ctx.Drop()
	}))
	p.Inject(0, 1, frameOfSize(1000, 0))
	eng.Run()
	if headLen != 192 || tailLen != 808 {
		t.Fatalf("split = (%d,%d), want (192,808)", headLen, tailLen)
	}
}

func TestShortPacketIsAllHead(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var headLen, tailLen int
	p.SetApp(AppFunc(func(ctx *Ctx) {
		headLen, tailLen = len(ctx.Head()), ctx.TailLen()
		ctx.Drop()
	}))
	p.Inject(0, 1, frameOfSize(64, 0))
	eng.Run()
	if headLen != 64 || tailLen != 0 {
		t.Fatalf("split = (%d,%d)", headLen, tailLen)
	}
}

func TestReadTailChunks(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	frame := make([]byte, 192+130)
	for i := range frame {
		frame[i] = byte(i)
	}
	var chunks [][]byte
	p.SetApp(AppFunc(func(ctx *Ctx) {
		// Fig. 10's loop: read the tail in 64-byte chunks.
		for off := 0; off < ctx.TailLen(); off += 64 {
			chunk := ctx.ReadTail(off, 64)
			chunks = append(chunks, append([]byte(nil), chunk...))
		}
		ctx.Consume()
	}))
	p.Inject(0, 1, frame)
	eng.Run()
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	if len(chunks[0]) != 64 || len(chunks[1]) != 64 || len(chunks[2]) != 2 {
		t.Fatalf("chunk sizes = %d,%d,%d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
	if chunks[0][0] != 192 || chunks[2][1] != byte((192+129)%256) {
		t.Fatal("tail bytes wrong")
	}
}

func TestHeadRewriteSurvivesForwarding(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.Head()[0] = 0xEE
		ctx.Forward(0)
	}))
	p.Inject(0, 1, frameOfSize(300, 0x11))
	eng.Run()
	if got[0].frame[0] != 0xEE {
		t.Fatal("head rewrite lost")
	}
	if got[0].frame[250] != 0x11 {
		t.Fatal("tail corrupted")
	}
}

func TestReorderEngineRestoresFlowOrder(t *testing.T) {
	// Packet A (slow processing) arrives before packet B (fast) on the same
	// flow; B must not egress before A.
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	first := true
	p.SetApp(AppFunc(func(ctx *Ctx) {
		if first {
			first = false
			ctx.ChargeInstr(10000) // 20 µs
		} else {
			ctx.ChargeInstr(1)
		}
		ctx.Forward(0)
	}))
	p.Inject(0, 42, frameOfSize(100, 1))
	p.Inject(0, 42, frameOfSize(100, 2))
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].frame[0] != 1 || got[1].frame[0] != 2 {
		t.Fatalf("flow order violated: %d then %d", got[0].frame[0], got[1].frame[0])
	}
	if got[1].at < got[0].at {
		t.Fatal("timestamps out of order")
	}
}

func TestDifferentFlowsMayReorder(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	first := true
	p.SetApp(AppFunc(func(ctx *Ctx) {
		if first {
			first = false
			ctx.ChargeInstr(10000)
		} else {
			ctx.ChargeInstr(1)
		}
		ctx.Forward(0)
	}))
	p.Inject(0, 1, frameOfSize(100, 1)) // slow, flow 1
	p.Inject(0, 2, frameOfSize(100, 2)) // fast, flow 2
	eng.Run()
	if got[0].frame[0] != 2 {
		t.Fatal("fast packet on a different flow should egress first (run-to-completion, §1)")
	}
}

func TestDroppedPacketReleasesFlowOrder(t *testing.T) {
	// A dropped packet must not wedge its flow's reorder state.
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	n := 0
	p.SetApp(AppFunc(func(ctx *Ctx) {
		n++
		if n == 1 {
			ctx.ChargeInstr(1000)
			ctx.Drop() // slow and dropped
			return
		}
		ctx.Forward(0)
	}))
	p.Inject(0, 9, frameOfSize(100, 1))
	p.Inject(0, 9, frameOfSize(100, 2))
	eng.Run()
	if len(got) != 1 || got[0].frame[0] != 2 {
		t.Fatalf("second packet not released: %d frames", len(got))
	}
}

func TestEgressSerializationDelay(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{PortBandwidth: 100_000_000_000})
	var got []delivered
	p.SetOutput(collector(&got))
	p.SetApp(AppFunc(func(ctx *Ctx) { ctx.Forward(0) }))
	p.Inject(0, 1, frameOfSize(1250, 0)) // 1250 B at 100 Gbps = 100 ns
	eng.Run()
	if got[0].at < 100*sim.Nanosecond {
		t.Fatalf("delivered at %v, want >= 100 ns serialization", got[0].at)
	}
}

func TestEgressQueueingBackToBack(t *testing.T) {
	// Two result emissions at the same instant serialize on the port.
	eng := sim.NewEngine()
	p := New(eng, Config{PortBandwidth: 100_000_000_000})
	var got []delivered
	p.SetOutput(collector(&got))
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.Emit(0, frameOfSize(12500, 1)) // 1 µs each
		ctx.Emit(0, frameOfSize(12500, 2))
		ctx.Consume()
	}))
	p.Inject(0, 1, frameOfSize(64, 0))
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("emitted %d", len(got))
	}
	gap := got[1].at - got[0].at
	if gap < 990*sim.Nanosecond {
		t.Fatalf("second frame departed only %v after first", gap)
	}
	if p.Stats().Emitted != 2 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestThreadPoolSaturationQueues(t *testing.T) {
	// With a 2-thread pool and long-running packets, the third packet must
	// wait for a thread, and MaxQueued must reflect it.
	eng := sim.NewEngine()
	p := New(eng, Config{NumPPEs: 1, ThreadsPerPPE: 2})
	var got []delivered
	p.SetOutput(collector(&got))
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.ChargeInstr(500) // 1 µs each
		ctx.Forward(0)
	}))
	for i := 0; i < 3; i++ {
		p.Inject(0, uint64(i+1), frameOfSize(100, byte(i)))
	}
	if p.BusyThreads() != 2 {
		t.Fatalf("busy = %d, want 2", p.BusyThreads())
	}
	eng.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d", len(got))
	}
	// Third packet started only after a thread freed at ~1 µs.
	if got[2].at < 2*sim.Microsecond {
		t.Fatalf("third packet at %v, want >= 2 µs", got[2].at)
	}
	if p.Stats().MaxQueued < 1 {
		t.Fatal("queueing not recorded")
	}
}

func TestManyThreadsRunConcurrently(t *testing.T) {
	// 100 packets, 1 µs of compute each, on a big pool: all finish ≈1 µs,
	// not 100 µs (run-to-completion parallelism).
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.ChargeInstr(500)
		ctx.Forward(0)
	}))
	for i := 0; i < 100; i++ {
		p.Inject(0, uint64(i), frameOfSize(64, 0))
	}
	eng.Run()
	last := got[len(got)-1].at
	if last > 3*sim.Microsecond {
		t.Fatalf("last completion %v; pool not parallel", last)
	}
}

func TestTimerThreadsStaggered(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var firings []sim.Time
	var parts []int
	p.StartTimerThreads(4, 1000*sim.Nanosecond, func(ctx *Ctx, part int) {
		firings = append(firings, ctx.Now())
		parts = append(parts, part)
	})
	eng.RunUntil(999 * sim.Nanosecond)
	if len(firings) != 4 {
		t.Fatalf("firings in one period = %d, want 4", len(firings))
	}
	// Interarrival must be period/N = 250 ns (§5).
	for i := 1; i < 4; i++ {
		if gap := firings[i] - firings[i-1]; gap != 250*sim.Nanosecond {
			t.Fatalf("gap %d = %v, want 250 ns", i, gap)
		}
	}
	for i, pt := range parts {
		if pt != i {
			t.Fatalf("partition order = %v", parts)
		}
	}
}

func TestTimerThreadsShareThePool(t *testing.T) {
	// Timer work competes with packet work for threads: with a 1-thread
	// pool, a long packet delays the timer firing.
	eng := sim.NewEngine()
	p := New(eng, Config{NumPPEs: 1, ThreadsPerPPE: 1})
	var timerAt sim.Time
	p.StartTimerThreads(1, 100*sim.Nanosecond, func(ctx *Ctx, part int) {
		if timerAt == 0 {
			timerAt = ctx.Now()
		}
	})
	p.SetApp(AppFunc(func(ctx *Ctx) {
		ctx.ChargeInstr(1000) // 2 µs
		ctx.Drop()
	}))
	p.Inject(0, 1, frameOfSize(64, 0))
	eng.RunUntil(5 * sim.Microsecond)
	if timerAt < 2*sim.Microsecond {
		t.Fatalf("timer ran at %v despite occupied pool", timerAt)
	}
	stop := func() {} // silence linters about unused stop in other branches
	_ = stop
}

func TestTimerStop(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	count := 0
	stop := p.StartTimerThreads(1, 100*sim.Nanosecond, func(ctx *Ctx, part int) { count++ })
	eng.RunUntil(350 * sim.Nanosecond)
	stop.Stop()
	eng.RunUntil(10 * sim.Microsecond)
	if count != 4 {
		t.Fatalf("count = %d, want 4 firings (t=0,100,200,300) before stop", count)
	}
}

func TestTimerScanIntegration(t *testing.T) {
	// End-to-end §5 mechanism: insert records, run staggered timer threads
	// that clear/collect REF flags; untouched records age out within two
	// periods.
	eng := sim.NewEngine()
	p := New(eng, Config{})
	for k := uint64(0); k < 100; k++ {
		p.Hash.Insert(0, k, k)
	}
	var agedAt sim.Time
	aged := 0
	const parts = 10
	p.StartTimerThreads(parts, 1*sim.Millisecond, func(ctx *Ctx, part int) {
		ctx.ScanHashPartition(part, parts, func(key, val uint64, ref bool) hasheng.ScanAction {
			if !ref {
				aged++
				if agedAt == 0 {
					agedAt = ctx.Now()
				}
				return hasheng.ScanDelete
			}
			return hasheng.ScanClearRef
		})
	})
	eng.RunUntil(3 * sim.Millisecond)
	if aged != 100 {
		t.Fatalf("aged = %d, want 100", aged)
	}
	// Recovery within 2× the timeout interval (Fig. 14's bound).
	if agedAt > 2*sim.Millisecond {
		t.Fatalf("first aging at %v, want <= 2 ms", agedAt)
	}
	if p.Hash.Len() != 0 {
		t.Fatalf("records left: %d", p.Hash.Len())
	}
}

func TestMicrocodeAppOnPFE(t *testing.T) {
	prog := microcode.MustAssemble(`
program port_filter;
struct ether_t { dmac:48; smac:48; etype:16; };
layout ether : ether_t @ 0;
s: begin
    if (ether.etype == 0x0800) { exit(forward); }
    exit(drop);
end
`)
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	app := &MicrocodeApp{Program: prog, EgressPort: 2}
	p.SetApp(app)

	ipv4 := frameOfSize(100, 0)
	ipv4[12], ipv4[13] = 0x08, 0x00
	arp := frameOfSize(100, 0)
	arp[12], arp[13] = 0x08, 0x06
	p.Inject(0, 1, ipv4)
	p.Inject(0, 2, arp)
	eng.Run()
	if len(got) != 1 || got[0].port != 2 {
		t.Fatalf("delivered %d frames", len(got))
	}
	st := p.Stats()
	if st.Forwarded != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if app.Errors != 0 {
		t.Fatalf("microcode errors = %d", app.Errors)
	}
	if st.Instructions == 0 {
		t.Fatal("instruction accounting missing")
	}
}

func TestInjectInvalidPortPanics(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{NumPorts: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Inject(4, 1, frameOfSize(64, 0))
}

func TestNoAppDropsPackets(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{})
	p.Inject(0, 1, frameOfSize(64, 0))
	eng.Run()
	if p.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestPortStatsAndUtilization(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, Config{PortBandwidth: 100_000_000_000})
	p.SetOutput(func(int, []byte, sim.Time) {})
	p.SetApp(AppFunc(func(ctx *Ctx) { ctx.Forward(2) }))
	for i := 0; i < 10; i++ {
		p.Inject(0, uint64(i), frameOfSize(12500, 0)) // 1 µs serialization each
	}
	eng.Run()
	st := p.PortStats(2)
	if st.Frames != 10 || st.Bytes != 125000 {
		t.Fatalf("port stats = %+v", st)
	}
	if st.Busy != 10*sim.Microsecond {
		t.Fatalf("busy = %v", st.Busy)
	}
	if u := p.PortUtilization(2); u <= 0.5 || u > 1.0 {
		t.Fatalf("utilization = %v (back-to-back frames should keep the port busy)", u)
	}
	if p.PortStats(3).Frames != 0 {
		t.Fatal("idle port has frames")
	}
}

func TestMicrocodeAppEgressReg(t *testing.T) {
	// The program computes its own egress port into r5; EgressReg routes the
	// forward verdict through it instead of the fixed EgressPort.
	prog := microcode.MustAssemble(`
program dynegress;
reg port = r5;
s: begin
    port = 3;
    exit(forward);
end
`)
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	app := &MicrocodeApp{Program: prog, EgressPort: 1, EgressReg: 5}
	p.SetApp(app)
	p.Inject(0, 1, frameOfSize(100, 0))
	eng.Run()
	if app.Errors != 0 {
		t.Fatalf("microcode errors = %d (%v)", app.Errors, app.LastError)
	}
	if len(got) != 1 || got[0].port != 3 {
		t.Fatalf("delivered = %+v, want 1 frame on port 3", got)
	}
}

func TestMicrocodeAppFinishFanout(t *testing.T) {
	// The program consumes the packet after staging a waiter count in r4; the
	// Finish hook replicates a reply per waiter — the MQSS-style replication
	// hand-off netrpc's coalesced fanout uses.
	prog := microcode.MustAssemble(`
program fanout;
reg waiters = r4;
s: begin
    waiters = 3;
    exit(consume);
end
`)
	eng := sim.NewEngine()
	p := New(eng, Config{})
	var got []delivered
	p.SetOutput(collector(&got))
	app := &MicrocodeApp{Program: prog, EgressPort: 1}
	app.Finish = func(th *microcode.Thread, ctx *Ctx, v microcode.Verdict) {
		if v != microcode.VerdictConsume {
			t.Fatalf("finish verdict = %v", v)
		}
		for i := uint64(0); i < th.Regs[4]; i++ {
			ctx.Emit(2, frameOfSize(64, byte(i)))
		}
	}
	p.SetApp(app)
	p.Inject(0, 1, frameOfSize(100, 0))
	eng.Run()
	if app.Errors != 0 {
		t.Fatalf("microcode errors = %d (%v)", app.Errors, app.LastError)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d frames, want 3 fanout replies", len(got))
	}
	for i, d := range got {
		if d.port != 2 || d.frame[0] != byte(i) {
			t.Fatalf("reply %d = port %d tag %d", i, d.port, d.frame[0])
		}
	}
}
