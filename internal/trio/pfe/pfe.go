// Package pfe models one Trio Packet Forwarding Engine (§2.1–§2.2 of the
// paper): the Dispatch module that splits packets into heads and tails and
// hands heads to Packet Processing Engine threads, the run-to-completion
// multi-threaded PPE pool, the Reorder Engine that restores per-flow order,
// the egress queueing subsystem, and the timer threads of §5.
//
// Applications attach to a PFE either as native handlers (implementing App
// with explicit cycle accounting, the way internal/trioml does) or as
// Microcode programs via RunMicrocode, which adapts a PPE thread context to
// the microcode.Env XTXN interface.
package pfe

import (
	"fmt"

	"github.com/trioml/triogo/internal/faults"
	"github.com/trioml/triogo/internal/obs"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/hasheng"
	"github.com/trioml/triogo/internal/trio/smem"
)

// Config sizes a PFE. Zero fields take the defaults of the 5th-generation
// chipset measured in the paper.
type Config struct {
	ID            int
	NumPPEs       int // PPEs per PFE ("hundreds"; 5th gen is on the order of 100)
	ThreadsPerPPE int // "tens of threads" per PPE
	HeadBytes     int // head size; Fig. 10 uses 192 bytes
	NumPorts      int
	PortBandwidth uint64 // bits per second per port
	CycleTime     sim.Time
	CyclesPerInst int // multi-cycle micro-instructions (§2.2)
	Mem           smem.Config
	Hash          hasheng.Config
}

// DefaultConfig returns the paper's operating point: 1 GHz clock, 192-byte
// heads, 100 Gbps ports.
func DefaultConfig() Config {
	return Config{
		NumPPEs:       96,
		ThreadsPerPPE: 20,
		HeadBytes:     192,
		NumPorts:      16,
		PortBandwidth: 100_000_000_000,
		CycleTime:     sim.Nanosecond,
		CyclesPerInst: 2,
	}
}

// Packet is one frame inside the PFE.
type Packet struct {
	Frame   []byte
	Port    int    // ingress port
	Flow    uint64 // flow key for the Reorder Engine
	Arrival sim.Time

	seq uint64 // per-flow sequence assigned by dispatch
}

// HeadLen reports how many bytes of the frame form the head.
func (p *Packet) headLen(headBytes int) int {
	if len(p.Frame) < headBytes {
		return len(p.Frame)
	}
	return headBytes
}

// Verdict is a thread's disposition of its packet (mirrors microcode).
type Verdict int

// Packet verdicts.
const (
	// VerdictDrop discards the packet.
	VerdictDrop Verdict = iota
	// VerdictForward sends the (possibly rewritten) packet out an egress port.
	VerdictForward
	// VerdictConsume absorbs the packet into shared state (aggregation).
	VerdictConsume
)

// App is a packet-processing application attached to a PFE. Process runs in
// the context of one PPE thread; it must charge its compute via ctx and set
// a verdict (default: drop).
type App interface {
	Process(ctx *Ctx)
}

// AppFunc adapts a function to App.
type AppFunc func(ctx *Ctx)

// Process implements App.
func (f AppFunc) Process(ctx *Ctx) { f(ctx) }

// Output delivers an egress frame to whatever is attached to a port.
type Output func(port int, frame []byte, at sim.Time)

// Stats aggregates PFE activity.
type Stats struct {
	Dispatched   uint64
	Forwarded    uint64
	Dropped      uint64
	Consumed     uint64
	Emitted      uint64 // new packets created by applications
	TimerFirings uint64
	Instructions uint64
	MaxQueued    int // worst-case dispatch queue depth
	PeakBusy     int // worst-case concurrently busy PPE threads
	BytesOut     uint64
}

// PFE is one Packet Forwarding Engine.
type PFE struct {
	Cfg    Config
	Engine *sim.Engine
	Mem    *smem.Memory
	Hash   *hasheng.Table

	app     App
	out     Output
	pool    threadPool
	queue   []work // FIFO ring: live entries are queue[qhead:]
	qhead   int
	flows   map[uint64]*flowState
	ports   []portState
	stats   Stats
	seqHint map[uint64]uint64

	ctxFree *Ctx    // recycled thread contexts
	outFree *outEvt // recycled egress delivery events

	trace  *obs.Trace          // nil: tracing off (the default; see SetTrace)
	faults *faults.PFEInjector // nil: thread-stall injection off (the default)
}

type portState struct {
	freeAt sim.Time
	frames uint64
	bytes  uint64
	busy   sim.Time // cumulative serialization time
}

// work is one unit for the thread pool: a packet or a timer firing.
type work struct {
	pkt   *Packet      // nil for timer work
	timer *timerThread // set when pkt is nil
}

// threadPool tracks PPE thread availability as a count plus completion
// events; all threads are interchangeable ("the PPE is selected based on
// availability", §2.1).
type threadPool struct {
	free int
	cap  int
}

// New builds a PFE bound to a simulation engine.
func New(eng *sim.Engine, cfg Config) *PFE {
	def := DefaultConfig()
	if cfg.NumPPEs == 0 {
		cfg.NumPPEs = def.NumPPEs
	}
	if cfg.ThreadsPerPPE == 0 {
		cfg.ThreadsPerPPE = def.ThreadsPerPPE
	}
	if cfg.HeadBytes == 0 {
		cfg.HeadBytes = def.HeadBytes
	}
	if cfg.NumPorts == 0 {
		cfg.NumPorts = def.NumPorts
	}
	if cfg.PortBandwidth == 0 {
		cfg.PortBandwidth = def.PortBandwidth
	}
	if cfg.CycleTime == 0 {
		cfg.CycleTime = def.CycleTime
	}
	if cfg.CyclesPerInst == 0 {
		cfg.CyclesPerInst = def.CyclesPerInst
	}
	p := &PFE{
		Cfg:    cfg,
		Engine: eng,
		Mem:    smem.New(cfg.Mem),
		Hash:   hasheng.NewTable(cfg.Hash),
		flows:  make(map[uint64]*flowState),
		ports:  make([]portState, cfg.NumPorts),
	}
	p.pool.cap = cfg.NumPPEs * cfg.ThreadsPerPPE
	p.pool.free = p.pool.cap
	return p
}

// SetApp installs the packet-processing application.
func (p *PFE) SetApp(app App) { p.app = app }

// SetFaults attaches a PPE thread-stall injector (nil: off). A stalled work
// item occupies its thread for the injected duration before executing —
// modeling a PPE that temporarily stops making progress, the failure the §5
// timer threads exist to survive. Memory bank-error injection is separate:
// attach it via Mem.SetFaults.
func (p *PFE) SetFaults(f *faults.PFEInjector) { p.faults = f }

// SetOutput installs the egress delivery hook.
func (p *PFE) SetOutput(out Output) { p.out = out }

// Stats returns a snapshot of the PFE's counters.
func (p *PFE) Stats() Stats { return p.stats }

// PortStats summarizes one egress port's activity.
type PortStats struct {
	Frames uint64
	Bytes  uint64
	Busy   sim.Time // cumulative serialization time
}

// PortStats returns egress counters for a port.
func (p *PFE) PortStats(port int) PortStats {
	ps := p.ports[port]
	return PortStats{Frames: ps.frames, Bytes: ps.bytes, Busy: ps.busy}
}

// PortUtilization reports the fraction of virtual time a port spent
// serializing, measured against the current clock (0 when no time has
// passed).
func (p *PFE) PortUtilization(port int) float64 {
	if p.Engine.Now() == 0 {
		return 0
	}
	return float64(p.ports[port].busy) / float64(p.Engine.Now())
}

// ThreadCapacity reports the total PPE thread pool size.
func (p *PFE) ThreadCapacity() int { return p.pool.cap }

// BusyThreads reports how many threads are currently executing.
func (p *PFE) BusyThreads() int { return p.pool.cap - p.pool.free }

// Inject delivers a frame to the PFE at the current virtual time, as if it
// arrived on the given ingress port. Flow identifies the reorder-engine flow
// (packets of one flow leave in arrival order; distinct flows may reorder).
func (p *PFE) Inject(port int, flow uint64, frame []byte) {
	if port < 0 || port >= p.Cfg.NumPorts {
		panic(fmt.Sprintf("pfe%d: inject on invalid port %d", p.Cfg.ID, port))
	}
	pkt := &Packet{Frame: frame, Port: port, Flow: flow, Arrival: p.Engine.Now()}
	p.enqueue(work{pkt: pkt})
}

// enqueue adds work and dispatches if a thread is free.
func (p *PFE) enqueue(w work) {
	p.queue = append(p.queue, w)
	if n := len(p.queue) - p.qhead; n > p.stats.MaxQueued {
		p.stats.MaxQueued = n
	}
	if p.trace != nil {
		p.trace.CounterValue("pfe", "work_queue_depth", int64(p.Cfg.ID),
			int64(p.Engine.Now()), float64(len(p.queue)-p.qhead))
	}
	p.tryDispatch()
}

// tryDispatch starts queued work on free threads. It runs inside an event,
// so p.Engine.Now() is the dispatch time.
func (p *PFE) tryDispatch() {
	for p.pool.free > 0 && p.qhead < len(p.queue) {
		w := p.queue[p.qhead]
		p.queue[p.qhead] = work{}
		p.qhead++
		if p.qhead == len(p.queue) {
			p.queue = p.queue[:0]
			p.qhead = 0
		}
		p.pool.free--
		if busy := p.pool.cap - p.pool.free; busy > p.stats.PeakBusy {
			p.stats.PeakBusy = busy
		}
		p.runWork(w)
	}
}

// getCtx takes a thread context from the free list (or makes one) and resets
// it for a thread starting now. Contexts recycle at thread completion, so
// steady-state packet and timer work allocates no Ctx.
func (p *PFE) getCtx() *Ctx {
	c := p.ctxFree
	if c == nil {
		c = &Ctx{}
	} else {
		p.ctxFree = c.poolNext
		c.poolNext = nil
	}
	c.pfe = p
	c.now = p.Engine.Now()
	return c
}

// putCtx recycles a finished thread context, keeping the capacity of its
// pool-owned head buffer and emit slice. A head installed via SetHead is
// caller-owned and is dropped, not recycled.
func (p *PFE) putCtx(c *Ctx) {
	headBuf := c.headBuf[:0]
	for i := range c.emits {
		c.emits[i] = emit{}
	}
	emits := c.emits[:0]
	*c = Ctx{headBuf: headBuf, emits: emits}
	c.poolNext = p.ctxFree
	p.ctxFree = c
}

// runWork executes one work item on a PPE thread starting now.
func (p *PFE) runWork(w work) {
	ctx := p.getCtx()
	// The trace thread id is the busy-slot index (1..cap): stacked tracks in
	// the viewer read directly as instantaneous pool occupancy.
	ctx.tslot = int64(p.pool.cap - p.pool.free)
	if p.faults != nil {
		// An injected stall holds the thread busy before any processing:
		// the packet (or timer firing) sits on a wedged PPE.
		ctx.now += p.faults.Stall()
	}
	start := ctx.now
	if w.pkt != nil {
		p.stats.Dispatched++
		pkt := w.pkt
		if p.trace != nil {
			p.trace.Complete("dispatch", "queue", int64(p.Cfg.ID), 0,
				int64(pkt.Arrival), int64(start-pkt.Arrival))
		}
		// Dispatch loads the head into thread-local memory; the tail stays
		// in the Packet Buffer (§2.1).
		hl := pkt.headLen(p.Cfg.HeadBytes)
		ctx.pkt = pkt
		ctx.headBuf = append(ctx.headBuf[:0], pkt.Frame[:hl]...)
		ctx.head = ctx.headBuf
		ctx.tail = pkt.Frame[hl:]
		// Register with the Reorder Engine before processing so that
		// completion order cannot jump arrival order within a flow.
		pkt.seq = p.reorderArrive(pkt.Flow)
		if p.app == nil {
			ctx.Drop()
		} else {
			p.app.Process(ctx)
		}
	} else {
		p.stats.TimerFirings++
		w.timer.body(ctx, w.timer.part)
	}
	p.stats.Instructions += ctx.stats.Instructions
	if p.trace != nil {
		name := "packet"
		if w.pkt == nil {
			name = "timer"
		}
		p.trace.Complete("ppe", name, int64(p.Cfg.ID), ctx.tslot,
			int64(start), int64(ctx.now-start))
	}

	p.Engine.AtFunc(ctx.now, workDone, ctx)
}

// workDone is the thread-completion event: release the PPE thread, route the
// verdict, flush emits, recycle the context, and pull in queued work.
func workDone(arg any) {
	ctx := arg.(*Ctx)
	p := ctx.pfe
	p.pool.free++
	if ctx.pkt != nil {
		p.complete(ctx)
	}
	p.emitAll(ctx)
	p.putCtx(ctx)
	p.tryDispatch()
}

// complete routes a finished packet thread's verdict through the Reorder
// Engine and egress.
func (p *PFE) complete(ctx *Ctx) {
	pkt := ctx.pkt
	switch ctx.verdict {
	case VerdictForward:
		frame := ctx.rebuildFrame()
		p.stats.Forwarded++
		p.reorderComplete(pkt.Flow, pkt.seq, frame, ctx.egressPort)
	case VerdictConsume:
		p.stats.Consumed++
		p.reorderComplete(pkt.Flow, pkt.seq, nil, 0)
	default:
		p.stats.Dropped++
		p.reorderComplete(pkt.Flow, pkt.seq, nil, 0)
	}
}

// emitAll sends application-created packets (e.g. aggregation results)
// straight to egress; they are new flows, so the Reorder Engine is not
// involved.
func (p *PFE) emitAll(ctx *Ctx) {
	for _, e := range ctx.emits {
		p.stats.Emitted++
		p.egress(e.port, e.frame, p.Engine.Now())
	}
}

// egress serializes a frame onto a port at the port's line rate and invokes
// the output hook at departure time.
func (p *PFE) egress(port int, frame []byte, ready sim.Time) {
	if port < 0 || port >= len(p.ports) {
		panic(fmt.Sprintf("pfe%d: egress on invalid port %d", p.Cfg.ID, port))
	}
	ser := sim.Time(uint64(len(frame)) * 8 * uint64(sim.Second) / p.Cfg.PortBandwidth)
	ps := &p.ports[port]
	start := ready
	if ps.freeAt > start {
		start = ps.freeAt
	}
	depart := start + ser
	ps.freeAt = depart
	ps.frames++
	ps.bytes += uint64(len(frame))
	ps.busy += ser
	p.stats.BytesOut += uint64(len(frame))
	if p.trace != nil {
		p.trace.Complete("egress", "tx", int64(p.Cfg.ID),
			egressTidBase+int64(port), int64(start), int64(ser))
	}
	if p.out != nil {
		o := p.outFree
		if o == nil {
			o = &outEvt{}
		} else {
			p.outFree = o.next
			o.next = nil
		}
		o.p, o.port, o.frame, o.at = p, port, frame, depart
		p.Engine.AtFunc(depart, deliverOut, o)
	}
}

// outEvt carries one egress delivery; instances recycle through PFE.outFree
// so steady-state egress allocates no event state.
type outEvt struct {
	p     *PFE
	port  int
	frame []byte
	at    sim.Time
	next  *outEvt
}

func deliverOut(arg any) {
	o := arg.(*outEvt)
	p, port, frame, at := o.p, o.port, o.frame, o.at
	o.p, o.frame = nil, nil
	o.next = p.outFree
	p.outFree = o
	p.out(port, frame, at)
}

// ---- Reorder Engine (§2.1) ----

type flowState struct {
	nextSeq     uint64 // next sequence number to assign at dispatch
	nextRelease uint64 // next sequence number eligible to leave
	done        map[uint64]releasedPkt
}

type releasedPkt struct {
	frame []byte // nil for dropped/consumed packets (they release order only)
	port  int
}

func (p *PFE) reorderArrive(flow uint64) uint64 {
	fs := p.flows[flow]
	if fs == nil {
		fs = &flowState{done: make(map[uint64]releasedPkt)}
		p.flows[flow] = fs
	}
	seq := fs.nextSeq
	fs.nextSeq++
	return seq
}

// reorderComplete records a finished packet and releases the contiguous
// prefix of its flow. "The Reorder Engine holds the updated packet head
// until all earlier arriving packets in the same flow have been processed."
func (p *PFE) reorderComplete(flow, seq uint64, frame []byte, port int) {
	fs := p.flows[flow]
	fs.done[seq] = releasedPkt{frame: frame, port: port}
	for {
		r, ok := fs.done[fs.nextRelease]
		if !ok {
			return
		}
		delete(fs.done, fs.nextRelease)
		fs.nextRelease++
		if r.frame != nil {
			p.egress(r.port, r.frame, p.Engine.Now())
		}
	}
}

// ---- Timer threads (§5) ----

// timerThread is one §5 periodic thread: its slot in the engine re-arms in
// place and each firing enqueues the same work value, so steady-state timer
// firing allocates nothing.
type timerThread struct {
	p    *PFE
	part int
	body func(ctx *Ctx, part int)
}

func timerFire(arg any) {
	tt := arg.(*timerThread)
	tt.p.enqueue(work{timer: tt})
}

// TimerThreads is a cancellable handle on a group of §5 timer threads. Stop
// removes every pending tick from the event queue (the old stop-closure left
// dead ticks queued).
type TimerThreads struct {
	handles []sim.Handle
}

// Stop cancels all threads in the group. Safe to call more than once.
func (t *TimerThreads) Stop() {
	for _, h := range t.handles {
		h.Stop()
	}
}

// Active reports whether any thread in the group is still armed.
func (t *TimerThreads) Active() bool {
	for _, h := range t.handles {
		if h.Active() {
			return true
		}
	}
	return false
}

// StartTimerThreads launches n periodic timer threads with the given overall
// period, phase-staggered so back-to-back firings are period/n apart. Each
// firing occupies a PPE thread (any PPE, based on availability — no PPE is
// reserved) and runs body with its partition index.
func (p *PFE) StartTimerThreads(n int, period sim.Time, body func(ctx *Ctx, part int)) *TimerThreads {
	if n <= 0 || period <= 0 {
		panic("pfe: timer threads require n > 0 and a positive period")
	}
	g := &TimerThreads{handles: make([]sim.Handle, n)}
	for i := 0; i < n; i++ {
		tt := &timerThread{p: p, part: i, body: body}
		offset := period * sim.Time(i) / sim.Time(n)
		g.handles[i] = p.Engine.EveryFunc(offset, period, timerFire, tt)
	}
	return g
}
