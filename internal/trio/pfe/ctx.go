package pfe

import (
	"fmt"

	"github.com/trioml/triogo/internal/microcode"
	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/hasheng"
)

// CtxStats counts one thread's dynamic activity.
type CtxStats struct {
	Instructions uint64
	XTXNs        uint64
	SyncStall    sim.Time
}

// Ctx is the execution context of one PPE thread: the packet head in local
// memory, access to the tail via XTXNs, the shared memory and hash engine
// over the crossbar, and explicit compute accounting. Native applications
// call ChargeInstr for the instruction work their Microcode equivalent would
// execute; the timing constants come from the PFE config.
type Ctx struct {
	pfe  *PFE
	now  sim.Time
	pkt  *Packet // nil for timer threads
	head []byte  // the thread's copy of the packet head (mutable)
	tail []byte  // view of the tail held in the Packet Buffer

	verdict    Verdict
	egressPort int
	emits      []emit
	stats      CtxStats

	headBuf  []byte // pool-owned head storage; head aliases it until SetHead
	poolNext *Ctx   // PFE free-list link; contexts recycle at completion
	tslot    int64  // trace track (busy-slot index) assigned at dispatch
}

type emit struct {
	port  int
	frame []byte
}

// Now reports the thread's current virtual time.
func (c *Ctx) Now() sim.Time { return c.now }

// Stats reports the thread's activity counters so far.
func (c *Ctx) Stats() CtxStats { return c.stats }

// Packet returns the packet being processed (nil in timer threads).
func (c *Ctx) Packet() *Packet { return c.pkt }

// Head returns the mutable packet head in the thread's local memory.
func (c *Ctx) Head() []byte { return c.head }

// SetHead replaces the packet head (packet rewriting: PPEs "can easily
// create new headers or consume/remove existing headers", §2.2). The caller's
// slice becomes the head view; it is never recycled into the context pool.
func (c *Ctx) SetHead(h []byte) { c.head = h }

// FrameLen reports the full packet length (head + tail).
func (c *Ctx) FrameLen() int { return len(c.head) + len(c.tail) }

// TailLen reports the number of tail bytes held in the Packet Buffer.
func (c *Ctx) TailLen() int { return len(c.tail) }

// ChargeInstr accounts for n micro-instructions of thread compute.
func (c *Ctx) ChargeInstr(n int) {
	c.stats.Instructions += uint64(n)
	c.now += sim.Time(n*c.pfe.Cfg.CyclesPerInst) * c.pfe.Cfg.CycleTime
}

// ChargeCycles accounts for raw cycles (non-instruction overheads).
func (c *Ctx) ChargeCycles(n int) {
	c.now += sim.Time(n) * c.pfe.Cfg.CycleTime
}

// wait models a synchronous XTXN: the thread suspends until done.
func (c *Ctx) wait(done sim.Time) {
	if done > c.now {
		c.stats.SyncStall += done - c.now
		c.now = done
	}
}

// span records one XTXN interval on the thread's trace track. The nil-trace
// default costs a single predictable branch, keeping the traced-off data
// path identical to before instrumentation.
func (c *Ctx) span(cat, name string, start, done sim.Time) {
	if tr := c.pfe.trace; tr != nil {
		tr.Complete(cat, name, int64(c.pfe.Cfg.ID), c.tslot, int64(start), int64(done-start))
	}
}

// ReadTail fetches size bytes of the packet tail starting at off into the
// thread (one XTXN through the crossbar to the Memory and Queueing
// Subsystem, §3.1). Short reads at the end of the tail return what remains.
func (c *Ctx) ReadTail(off, size int) []byte {
	c.stats.XTXNs++
	end := off + size
	if end > len(c.tail) {
		end = len(c.tail)
	}
	if off > end {
		off = end
	}
	// Tail data crosses the crossbar with SRAM-class latency.
	done := c.now + 70*sim.Nanosecond
	c.span("pbuf", "tail_read", c.now, done)
	c.wait(done)
	return c.tail[off:end]
}

// WriteTail writes bytes into the packet tail held in the Packet Buffer —
// the PMEM write of Fig. 10's result-build loop. Writes beyond the tail are
// clipped.
func (c *Ctx) WriteTail(off int, data []byte) {
	c.stats.XTXNs++
	if off < 0 || off >= len(c.tail) {
		return
	}
	copy(c.tail[off:], data)
	done := c.now + 70*sim.Nanosecond
	c.span("pbuf", "tail_write", c.now, done)
	c.wait(done)
}

// MemRead issues a synchronous shared-memory read XTXN.
func (c *Ctx) MemRead(addr uint64, size int) []byte {
	c.stats.XTXNs++
	start := c.now
	data, done := c.pfe.Mem.Read(c.now, addr, size)
	c.span("rmw", "read", start, done)
	c.wait(done)
	return data
}

// MemReadInto is MemRead into caller-owned storage: identical timing, no
// allocation on the per-packet path.
func (c *Ctx) MemReadInto(addr uint64, b []byte) {
	c.stats.XTXNs++
	start := c.now
	done := c.pfe.Mem.ReadInto(c.now, addr, b)
	c.span("rmw", "read", start, done)
	c.wait(done)
}

// MemWrite issues a shared-memory write XTXN. Async writes do not suspend
// the thread.
func (c *Ctx) MemWrite(addr uint64, data []byte, async bool) {
	c.stats.XTXNs++
	start := c.now
	done := c.pfe.Mem.Write(c.now, addr, data)
	c.span("rmw", "write", start, done)
	if !async {
		c.wait(done)
	}
}

// AddVector32 offloads gradient summation to the RMW engines (§6.3): the
// engines do the adds near memory; the issuing thread does not stall per
// word, only for the crossbar issue.
func (c *Ctx) AddVector32(addr uint64, deltas []int32) {
	c.stats.XTXNs++
	done := c.pfe.Mem.AddVector32(c.now, addr, deltas)
	c.span("rmw", "add_vector", c.now, done)
}

// ReadVector32 synchronously reads count 32-bit words from shared memory.
func (c *Ctx) ReadVector32(addr uint64, count int) []int32 {
	c.stats.XTXNs++
	start := c.now
	vals, done := c.pfe.Mem.ReadVector32(c.now, addr, count)
	c.span("rmw", "read_vector", start, done)
	c.wait(done)
	return vals
}

// ReadVector32Append is ReadVector32 appending into dst: identical timing,
// allocation-free when dst has capacity.
func (c *Ctx) ReadVector32Append(addr uint64, count int, dst []int32) []int32 {
	c.stats.XTXNs++
	start := c.now
	vals, done := c.pfe.Mem.ReadVector32Append(c.now, addr, count, dst)
	c.span("rmw", "read_vector", start, done)
	c.wait(done)
	return vals
}

// CounterInc issues an asynchronous CounterIncPhys XTXN.
func (c *Ctx) CounterInc(addr uint64, pktLen uint32) {
	c.stats.XTXNs++
	done := c.pfe.Mem.CounterInc(c.now, addr, pktLen)
	c.span("rmw", "counter_inc", c.now, done)
}

// HashLookup issues a synchronous hash-engine lookup (sets the record's REF
// flag on hit).
func (c *Ctx) HashLookup(key uint64) (uint64, bool) {
	c.stats.XTXNs++
	start := c.now
	v, ok, done := c.pfe.Hash.Lookup(c.now, key)
	c.span("hash", "lookup", start, done)
	c.wait(done)
	return v, ok
}

// HashInsert issues a synchronous hash-engine insert.
func (c *Ctx) HashInsert(key, val uint64) bool {
	c.stats.XTXNs++
	start := c.now
	ok, done := c.pfe.Hash.Insert(c.now, key, val)
	c.span("hash", "insert", start, done)
	c.wait(done)
	return ok
}

// HashClearRef issues a synchronous hash-engine REF clear, undoing the
// reference a prior lookup took (duplicate handling; see hasheng.ClearRef).
func (c *Ctx) HashClearRef(key uint64) bool {
	c.stats.XTXNs++
	start := c.now
	ok, done := c.pfe.Hash.ClearRef(c.now, key)
	c.span("hash", "clear_ref", start, done)
	c.wait(done)
	return ok
}

// HashDelete issues a synchronous hash-engine delete.
func (c *Ctx) HashDelete(key uint64) bool {
	c.stats.XTXNs++
	start := c.now
	ok, done := c.pfe.Hash.Delete(c.now, key)
	c.span("hash", "delete", start, done)
	c.wait(done)
	return ok
}

// ScanHashPartition sweeps partition part of nParts of the hash table,
// charging the thread for the scan work (used by timer threads, §5).
func (c *Ctx) ScanHashPartition(part, nParts int, visit func(key, val uint64, ref bool) hasheng.ScanAction) int {
	c.stats.XTXNs++
	start := c.now
	n, done := c.pfe.Hash.ScanPartition(c.now, part, nParts, visit)
	c.span("hash", "scan", start, done)
	c.wait(done)
	return n
}

// Forward sets the thread's verdict to forward the packet out port.
func (c *Ctx) Forward(port int) {
	c.verdict = VerdictForward
	c.egressPort = port
}

// Drop sets the thread's verdict to drop the packet.
func (c *Ctx) Drop() { c.verdict = VerdictDrop }

// Consume absorbs the packet into shared state: nothing egresses, but the
// packet is not an error drop.
func (c *Ctx) Consume() { c.verdict = VerdictConsume }

// Emit creates a new packet (e.g. an aggregation Result packet) and queues
// it for egress on port. The frame is built in the Packet Buffer; the paper
// builds result tails in 256-byte chunks, which callers account for
// explicitly via ChargeInstr/MemRead.
func (c *Ctx) Emit(port int, frame []byte) {
	if port < 0 || port >= c.pfe.Cfg.NumPorts {
		panic(fmt.Sprintf("pfe%d: emit on invalid port %d", c.pfe.Cfg.ID, port))
	}
	c.emits = append(c.emits, emit{port: port, frame: frame})
}

// FullFrame reassembles head+tail as the egress path would (a Packet Buffer
// DMA, not a per-byte thread copy, so no XTXN time is charged). Use it when
// replicating a packet to multiple ports.
func (c *Ctx) FullFrame() []byte { return c.rebuildFrame() }

// rebuildFrame reassembles head+tail after processing for forwarding.
func (c *Ctx) rebuildFrame() []byte {
	frame := make([]byte, 0, len(c.head)+len(c.tail))
	frame = append(frame, c.head...)
	return append(frame, c.tail...)
}

// ---- Microcode adapter ----

// mcEnv adapts a Ctx to microcode.Env so assembled programs can run on PPE
// threads with identical XTXN semantics.
type mcEnv struct{ c *Ctx }

func (e mcEnv) MemRead(now sim.Time, addr uint64, size int) ([]byte, sim.Time) {
	return e.c.pfe.Mem.Read(now, addr, size)
}
func (e mcEnv) MemWrite(now sim.Time, addr uint64, data []byte) sim.Time {
	return e.c.pfe.Mem.Write(now, addr, data)
}
func (e mcEnv) CounterInc(now sim.Time, addr uint64, pktLen uint32) sim.Time {
	return e.c.pfe.Mem.CounterInc(now, addr, pktLen)
}
func (e mcEnv) ReadTail(now sim.Time, off, size int) ([]byte, sim.Time) {
	end := off + size
	if end > len(e.c.tail) {
		end = len(e.c.tail)
	}
	if off > end {
		off = end
	}
	return e.c.tail[off:end], now + 70*sim.Nanosecond
}
func (e mcEnv) WriteTail(now sim.Time, off int, data []byte) sim.Time {
	if off >= 0 && off < len(e.c.tail) {
		copy(e.c.tail[off:], data)
	}
	return now + 70*sim.Nanosecond
}
func (e mcEnv) HashLookup(now sim.Time, key uint64) (uint64, bool, sim.Time) {
	return e.c.pfe.Hash.Lookup(now, key)
}
func (e mcEnv) HashInsert(now sim.Time, key, val uint64) (bool, sim.Time) {
	return e.c.pfe.Hash.Insert(now, key, val)
}
func (e mcEnv) HashDelete(now sim.Time, key uint64) (bool, sim.Time) {
	return e.c.pfe.Hash.Delete(now, key)
}

// MicrocodeApp wraps an assembled program as a PFE application. EgressPort
// selects where forwarded packets leave; Entry is the first instruction
// label ("" means the program's first instruction). Setup, when non-nil,
// initializes thread registers from the packet (the dispatcher's metadata
// hand-off, e.g. r1 = packet length).
//
// Packets dispatch through the compiled v2 pipeline: the first Process call
// compiles (and statically verifies) Program, and every thread then runs on
// microcode.RunCompiled. Set Interpret to force the reference interpreter —
// for benchmarking it, or for programs the verifier rejects (which the
// interpreter still executes under its run-time guards).
type MicrocodeApp struct {
	Program    *microcode.Program
	Entry      string
	EgressPort int
	Setup      func(th *microcode.Thread, ctx *Ctx)

	// EgressReg, when nonzero, names the thread register whose low bits
	// select the egress port for forwarded packets, overriding EgressPort —
	// the microcode equivalent of a next-hop lookup result feeding the MQSS.
	// Register 0 cannot be an egress register (it doubles as the disabled
	// sentinel); programs use r1..r31.
	EgressReg int

	// Finish, when non-nil, runs after a thread terminates normally and its
	// verdict has been applied — the reinject/replication hand-off (§2.3:
	// egress replication happens in the MQSS, not the PPE). It sees the
	// thread's final registers and local memory; netrpc uses it to fan a
	// served result out to every coalesced waiter via ctx.Emit. It does not
	// run for faulted threads (those drop).
	Finish func(th *microcode.Thread, ctx *Ctx, v microcode.Verdict)

	// Interpret forces the reference tree-walking interpreter.
	Interpret bool

	// Errors counts threads that terminated abnormally (budget, bad label,
	// run-time fault); LastError records the most recent cause.
	Errors    uint64
	LastError error

	compiled    *microcode.Compiled
	compileDone bool
}

// Compile eagerly lowers the app's program through the verify/compile
// pipeline, returning the verifier's objection if it has one. Installers
// call it to surface bad programs at install time instead of per packet.
func (m *MicrocodeApp) Compile() error {
	if m.compileDone {
		if m.compiled == nil {
			return m.LastError
		}
		return nil
	}
	m.compileDone = true
	c, err := microcode.Compile(m.Program)
	if err != nil {
		m.LastError = err
		return err
	}
	m.compiled = c
	return nil
}

// Compiled returns the lowered program, or nil if compilation has not
// happened or failed.
func (m *MicrocodeApp) Compiled() *microcode.Compiled { return m.compiled }

// Process implements App.
func (m *MicrocodeApp) Process(ctx *Ctx) {
	if !m.Interpret && !m.compileDone {
		// Lazy path for apps installed without Compile: a verifier-rejected
		// program falls back to the interpreter (and records why).
		if err := m.Compile(); err != nil {
			m.LastError = err
		}
	}
	th := microcode.NewThread(mcEnv{ctx}, ctx.now)
	th.LoadHead(ctx.head)
	if m.Setup != nil {
		m.Setup(th, ctx)
	}
	entry := m.Entry
	if entry == "" {
		entry = m.Program.Instrs[0].Label
	}
	timing := microcode.Timing{CycleTime: ctx.pfe.Cfg.CycleTime, CyclesPerInstr: ctx.pfe.Cfg.CyclesPerInst}
	var v microcode.Verdict
	var err error
	if m.compiled != nil && !m.Interpret {
		v, err = microcode.RunCompiledLimited(m.compiled, th, entry, timing, microcode.DefaultBudget)
	} else {
		v, err = microcode.RunLimited(m.Program, th, entry, timing, microcode.DefaultBudget)
	}
	ctx.now = th.Now
	ctx.stats.Instructions += th.Stats.Instructions
	ctx.stats.XTXNs += th.Stats.XTXNs
	ctx.stats.SyncStall += th.Stats.SyncStall
	if err != nil {
		m.Errors++
		m.LastError = err
		ctx.Drop()
		return
	}
	// Unload the (possibly rewritten) head from local memory.
	copy(ctx.head, th.LMem[:len(ctx.head)])
	switch v {
	case microcode.VerdictForward:
		port := m.EgressPort
		if m.EgressReg != 0 {
			port = int(th.Regs[m.EgressReg] % uint64(ctx.pfe.Cfg.NumPorts))
		}
		ctx.Forward(port)
	case microcode.VerdictConsume:
		ctx.Consume()
	default:
		ctx.Drop()
	}
	if m.Finish != nil {
		m.Finish(th, ctx, v)
	}
}
