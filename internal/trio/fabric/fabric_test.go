package fabric

import (
	"testing"

	"github.com/trioml/triogo/internal/sim"
)

func TestSendDeliversWithLatency(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, 4, Config{Latency: 500 * sim.Nanosecond, Bandwidth: 400_000_000_000})
	var at sim.Time
	f.Send(0, 3, make([]byte, 5000), func(fr []byte, a sim.Time) { at = a })
	eng.Run()
	// 5000 B at 400 Gbps = 100 ns serialization + 500 ns latency.
	if at != 600*sim.Nanosecond {
		t.Fatalf("arrival = %v", at)
	}
	if f.Frames() != 1 || f.Bytes() != 5000 {
		t.Fatalf("counters = %d/%d", f.Frames(), f.Bytes())
	}
}

func TestPathsAreIndependent(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, 3, Config{Latency: 0, Bandwidth: 100_000_000_000})
	var a01, a02 sim.Time
	f.Send(0, 1, make([]byte, 12500), func(_ []byte, a sim.Time) { a01 = a })
	f.Send(0, 2, make([]byte, 12500), func(_ []byte, a sim.Time) { a02 = a })
	eng.Run()
	// Distinct (src,dst) paths do not queue behind each other.
	if a01 != a02 {
		t.Fatalf("paths interfered: %v vs %v", a01, a02)
	}
}

func TestSamePathSerializes(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, 2, Config{Latency: 0, Bandwidth: 100_000_000_000})
	var first, second sim.Time
	f.Send(0, 1, make([]byte, 12500), func(_ []byte, a sim.Time) { first = a })
	f.Send(0, 1, make([]byte, 12500), func(_ []byte, a sim.Time) { second = a })
	eng.Run()
	if second-first != 1*sim.Microsecond {
		t.Fatalf("gap = %v, want 1 µs", second-first)
	}
}

func TestInvalidEndpointPanics(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, 2, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Send(0, 2, nil, func([]byte, sim.Time) {})
}
