// Package fabric models the interconnection fabric that joins the PFEs of a
// multi-PFE Trio chassis (§2.1): an any-to-any, non-blocking interconnect
// whose per-path capacity is provisioned so the fabric itself never limits
// forwarding. Frames crossing the fabric pay a fixed traversal latency plus
// per-path serialization.
package fabric

import (
	"fmt"

	"github.com/trioml/triogo/internal/sim"
)

// Config parameterizes a fabric instance.
type Config struct {
	Latency   sim.Time // traversal latency; default 500 ns
	Bandwidth uint64   // bits per second per (src,dst) path; default 400 Gbps
}

// DefaultConfig returns a fabric comfortably faster than the 100 Gbps ports
// it interconnects, matching "the interconnection fabric expands the
// bandwidth of a device much farther than a single chip could support".
func DefaultConfig() Config {
	return Config{Latency: 500 * sim.Nanosecond, Bandwidth: 400_000_000_000}
}

// Fabric is an any-to-any interconnect between n endpoints.
type Fabric struct {
	cfg    Config
	eng    *sim.Engine
	n      int
	paths  []sim.Time // freeAt per (src,dst) path
	frames uint64
	bytes  uint64
	free   *crossing // recycled traversal events
}

// crossing carries one frame across the fabric; instances recycle through
// Fabric.free so steady-state sends allocate no event state.
type crossing struct {
	f       *Fabric
	deliver func(frame []byte, at sim.Time)
	frame   []byte
	at      sim.Time
	next    *crossing
}

func arriveEvent(arg any) {
	c := arg.(*crossing)
	f, deliver, frame, at := c.f, c.deliver, c.frame, c.at
	c.f, c.deliver, c.frame = nil, nil, nil
	c.next = f.free
	f.free = c
	deliver(frame, at)
}

// New builds a fabric joining n endpoints.
func New(eng *sim.Engine, n int, cfg Config) *Fabric {
	def := DefaultConfig()
	if cfg.Latency == 0 {
		cfg.Latency = def.Latency
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = def.Bandwidth
	}
	return &Fabric{cfg: cfg, eng: eng, n: n, paths: make([]sim.Time, n*n)}
}

// Send moves a frame from endpoint src to endpoint dst, invoking deliver at
// the virtual arrival time.
func (f *Fabric) Send(src, dst int, frame []byte, deliver func(frame []byte, at sim.Time)) {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		panic(fmt.Sprintf("fabric: path %d->%d outside %d endpoints", src, dst, f.n))
	}
	ser := sim.Time(uint64(len(frame)) * 8 * uint64(sim.Second) / f.cfg.Bandwidth)
	idx := src*f.n + dst
	start := f.eng.Now()
	if f.paths[idx] > start {
		start = f.paths[idx]
	}
	depart := start + ser
	f.paths[idx] = depart
	arrive := depart + f.cfg.Latency
	f.frames++
	f.bytes += uint64(len(frame))
	c := f.free
	if c == nil {
		c = &crossing{}
	} else {
		f.free = c.next
		c.next = nil
	}
	c.f, c.deliver, c.frame, c.at = f, deliver, frame, arrive
	f.eng.AtFunc(arrive, arriveEvent, c)
}

// Frames reports the number of frames carried.
func (f *Fabric) Frames() uint64 { return f.frames }

// Bytes reports the number of bytes carried.
func (f *Fabric) Bytes() uint64 { return f.bytes }
