package trio

import (
	"testing"

	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/pfe"
)

func TestRouterExternalForwarding(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, Config{NumPFEs: 1})
	r.PFE(0).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) { ctx.Forward(1) }))
	var got [][]byte
	r.AttachExternal(0, 1, func(port int, frame []byte, at sim.Time) {
		got = append(got, frame)
	})
	r.Inject(0, 0, 7, make([]byte, 100))
	eng.Run()
	if len(got) != 1 || len(got[0]) != 100 {
		t.Fatalf("delivered %d frames", len(got))
	}
}

func TestRouterFabricPath(t *testing.T) {
	// PFE0 forwards everything out port 5; port 5 is wired across the
	// fabric to PFE1 port 5; PFE1 forwards out port 0 to an external sink.
	eng := sim.NewEngine()
	r := New(eng, Config{NumPFEs: 2})
	r.ConnectInternal(0, 5, 1, 5)
	r.PFE(0).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) { ctx.Forward(5) }))
	r.PFE(1).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) { ctx.Forward(0) }))
	var gotAt sim.Time
	n := 0
	r.AttachExternal(1, 0, func(port int, frame []byte, at sim.Time) {
		n++
		gotAt = at
	})
	r.Inject(0, 0, 1, make([]byte, 1000))
	eng.Run()
	if n != 1 {
		t.Fatalf("delivered %d frames across fabric", n)
	}
	// Must include the 500 ns fabric traversal.
	if gotAt < 500*sim.Nanosecond {
		t.Fatalf("arrival %v too early for fabric latency", gotAt)
	}
	if r.Fabric.Frames() != 1 {
		t.Fatalf("fabric frames = %d", r.Fabric.Frames())
	}
}

func TestRouterFabricRoundTrip(t *testing.T) {
	// Internal links are bidirectional: PFE1 can reply to PFE0.
	eng := sim.NewEngine()
	r := New(eng, Config{NumPFEs: 2})
	r.ConnectInternal(0, 5, 1, 5)
	r.PFE(0).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) {
		if ctx.Packet().Port == 5 { // came back over the fabric
			ctx.Forward(0)
			return
		}
		ctx.Forward(5)
	}))
	r.PFE(1).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) { ctx.Forward(5) })) // bounce back
	n := 0
	r.AttachExternal(0, 0, func(int, []byte, sim.Time) { n++ })
	r.Inject(0, 1, 1, make([]byte, 200))
	eng.Run()
	if n != 1 {
		t.Fatalf("round trip delivered %d", n)
	}
}

func TestRouterConflictingAttachmentPanics(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, Config{NumPFEs: 2})
	r.AttachExternal(0, 1, func(int, []byte, sim.Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.ConnectInternal(0, 1, 1, 1)
}

func TestRouterUnattachedPortBlackHoles(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, Config{NumPFEs: 1})
	r.PFE(0).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) { ctx.Forward(9) }))
	r.Inject(0, 0, 1, make([]byte, 64))
	eng.Run() // must not panic
	if r.PFE(0).Stats().Forwarded != 1 {
		t.Fatal("packet not processed")
	}
}

func TestRouterFlowClassifierAppliedOnFabric(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, Config{NumPFEs: 2})
	r.ConnectInternal(0, 5, 1, 5)
	r.SetFlowClassifier(func(frame []byte) uint64 { return uint64(frame[0]) })
	var flows []uint64
	r.PFE(0).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) { ctx.Forward(5) }))
	r.PFE(1).SetApp(pfe.AppFunc(func(ctx *pfe.Ctx) {
		flows = append(flows, ctx.Packet().Flow)
		ctx.Consume()
	}))
	f := make([]byte, 64)
	f[0] = 9
	r.Inject(0, 0, 1, f)
	eng.Run()
	if len(flows) != 1 || flows[0] != FabricFlowBase|9 {
		t.Fatalf("flows = %v", flows)
	}
}
