// Package hasheng models Trio's hardware hash engine: the
// lookup/insert/delete XTXN target used by Microcode programs for stateful
// applications, plus the dedicated-logic hash function used for load
// balancing (§2.2).
//
// Two hardware behaviours from the paper matter for the straggler use case
// (§5) and are reproduced exactly:
//
//   - Every record carries a "Recently Referenced" (REF) flag, set when the
//     record is created and whenever a lookup references it.
//   - The table supports partitioned scanning, so N phase-staggered timer
//     threads can each sweep 1/N of the records and check-and-clear REF
//     flags to detect records that have aged out.
package hasheng

import (
	"fmt"

	"github.com/trioml/triogo/internal/sim"
)

// Config sizes a hash table instance.
type Config struct {
	Buckets       int      // power of two; default 4096
	OpLatency     sim.Time // XTXN round trip for lookup/insert/delete; default 70 ns (SRAM-resident structure)
	ScanPerRecord sim.Time // timer-thread cost to visit one record; default 4 ns (multi-cycle microcode loop body)
}

// DefaultConfig returns a table sized for tens of thousands of block records.
func DefaultConfig() Config {
	return Config{Buckets: 4096, OpLatency: 70 * sim.Nanosecond, ScanPerRecord: 4 * sim.Nanosecond}
}

type entry struct {
	key uint64
	val uint64
	ref bool
}

// Table is a hash table with REF flags. Not safe for concurrent use; the
// simulation serializes access just as the hardware's engine does.
type Table struct {
	cfg     Config
	mask    uint64
	buckets [][]entry
	n       int

	// Stats
	Lookups, Hits, Inserts, Deletes, Scanned uint64
}

// NewTable builds a table from cfg; zero fields take defaults.
func NewTable(cfg Config) *Table {
	def := DefaultConfig()
	if cfg.Buckets == 0 {
		cfg.Buckets = def.Buckets
	}
	if cfg.Buckets&(cfg.Buckets-1) != 0 {
		panic(fmt.Sprintf("hasheng: buckets %d not a power of two", cfg.Buckets))
	}
	if cfg.OpLatency == 0 {
		cfg.OpLatency = def.OpLatency
	}
	if cfg.ScanPerRecord == 0 {
		cfg.ScanPerRecord = def.ScanPerRecord
	}
	return &Table{cfg: cfg, mask: uint64(cfg.Buckets - 1), buckets: make([][]entry, cfg.Buckets)}
}

// Len reports the number of live records.
func (t *Table) Len() int { return t.n }

func (t *Table) bucket(key uint64) uint64 { return Mix64(key) & t.mask }

// Lookup finds a record and, when present, sets its REF flag (the hardware
// reference bit that straggler detection relies on).
func (t *Table) Lookup(now sim.Time, key uint64) (val uint64, ok bool, done sim.Time) {
	t.Lookups++
	done = now + t.cfg.OpLatency
	b := t.buckets[t.bucket(key)]
	for i := range b {
		if b[i].key == key {
			b[i].ref = true
			t.Hits++
			return b[i].val, true, done
		}
	}
	return 0, false, done
}

// Insert creates a record with its REF flag set. It fails if the key exists.
func (t *Table) Insert(now sim.Time, key, val uint64) (ok bool, done sim.Time) {
	t.Inserts++
	done = now + t.cfg.OpLatency
	idx := t.bucket(key)
	for _, e := range t.buckets[idx] {
		if e.key == key {
			return false, done
		}
	}
	t.buckets[idx] = append(t.buckets[idx], entry{key: key, val: val, ref: true})
	t.n++
	return true, done
}

// Update overwrites the value of an existing record without touching REF.
func (t *Table) Update(now sim.Time, key, val uint64) (ok bool, done sim.Time) {
	done = now + t.cfg.OpLatency
	b := t.buckets[t.bucket(key)]
	for i := range b {
		if b[i].key == key {
			b[i].val = val
			return true, done
		}
	}
	return false, done
}

// ClearRef clears a record's REF flag without otherwise touching it — the
// inverse of the reference a Lookup just took. Aggregation programs use it
// when a lookup turns out to be a retransmitted duplicate: a duplicate is
// not forward progress, so it must not keep the record alive against the
// timer threads (otherwise periodic retransmission livelocks aging).
func (t *Table) ClearRef(now sim.Time, key uint64) (ok bool, done sim.Time) {
	done = now + t.cfg.OpLatency
	b := t.buckets[t.bucket(key)]
	for i := range b {
		if b[i].key == key {
			b[i].ref = false
			return true, done
		}
	}
	return false, done
}

// Delete removes a record.
func (t *Table) Delete(now sim.Time, key uint64) (ok bool, done sim.Time) {
	t.Deletes++
	done = now + t.cfg.OpLatency
	idx := t.bucket(key)
	b := t.buckets[idx]
	for i := range b {
		if b[i].key == key {
			b[i] = b[len(b)-1]
			t.buckets[idx] = b[:len(b)-1]
			t.n--
			return true, done
		}
	}
	return false, done
}

// ScanAction is a scan callback's verdict on one record.
type ScanAction int

const (
	// ScanKeep leaves the record untouched.
	ScanKeep ScanAction = iota
	// ScanClearRef clears the REF flag (the normal timer-thread action on a
	// recently-referenced record).
	ScanClearRef
	// ScanDelete removes the record.
	ScanDelete
)

// ScanPartition visits every record whose bucket falls in partition part of
// nParts (0 <= part < nParts), calling visit with the record and its current
// REF flag. The visit verdict is applied in place. It returns the number of
// records visited and the virtual completion time of the sweep — the
// accounting behind "every triggered thread scans 1/N of the aggregation
// table" (§5).
func (t *Table) ScanPartition(now sim.Time, part, nParts int, visit func(key, val uint64, ref bool) ScanAction) (int, sim.Time) {
	if nParts <= 0 || part < 0 || part >= nParts {
		panic(fmt.Sprintf("hasheng: partition %d of %d invalid", part, nParts))
	}
	lo := len(t.buckets) * part / nParts
	hi := len(t.buckets) * (part + 1) / nParts
	visited := 0
	for bi := lo; bi < hi; bi++ {
		b := t.buckets[bi]
		for i := 0; i < len(b); {
			visited++
			switch visit(b[i].key, b[i].val, b[i].ref) {
			case ScanClearRef:
				b[i].ref = false
				i++
			case ScanDelete:
				b[i] = b[len(b)-1]
				b = b[:len(b)-1]
				t.n--
			default:
				i++
			}
		}
		t.buckets[bi] = b
	}
	t.Scanned += uint64(visited)
	return visited, now + sim.Time(visited)*t.cfg.ScanPerRecord
}

// Ref reports a record's REF flag without referencing it (test/diagnostic).
func (t *Table) Ref(key uint64) (ref, ok bool) {
	b := t.buckets[t.bucket(key)]
	for i := range b {
		if b[i].key == key {
			return b[i].ref, true
		}
	}
	return false, false
}

// Mix64 is the "high-quality hash function implemented using dedicated
// logic" (§2.2): a full-avalanche 64-bit finalizer (splitmix64).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashFields hashes an arbitrary selection of packet fields — the Microcode
// program chooses which bytes participate (§2.2 "programmable field
// selection, hardwired hash function"). FNV-1a accumulation feeds the Mix64
// finalizer.
func HashFields(seed uint64, fields ...[]byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for _, f := range fields {
		for _, b := range f {
			h = (h ^ uint64(b)) * prime
		}
		h = (h ^ 0xFF) * prime // field separator so ("ab","c") != ("a","bc")
	}
	return Mix64(h)
}
