package hasheng

import (
	"testing"
	"testing/quick"

	"github.com/trioml/triogo/internal/sim"
)

func TestInsertLookupDelete(t *testing.T) {
	tb := NewTable(Config{})
	ok, _ := tb.Insert(0, 42, 1000)
	if !ok {
		t.Fatal("insert failed")
	}
	v, ok, _ := tb.Lookup(0, 42)
	if !ok || v != 1000 {
		t.Fatalf("lookup = (%d,%v)", v, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	ok, _ = tb.Delete(0, 42)
	if !ok {
		t.Fatal("delete failed")
	}
	if _, ok, _ := tb.Lookup(0, 42); ok {
		t.Fatal("lookup after delete succeeded")
	}
	if tb.Len() != 0 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	tb := NewTable(Config{})
	tb.Insert(0, 7, 1)
	if ok, _ := tb.Insert(0, 7, 2); ok {
		t.Fatal("duplicate insert succeeded")
	}
	if v, _, _ := tb.Lookup(0, 7); v != 1 {
		t.Fatalf("value overwritten: %d", v)
	}
}

func TestUpdate(t *testing.T) {
	tb := NewTable(Config{})
	tb.Insert(0, 7, 1)
	if ok, _ := tb.Update(0, 7, 99); !ok {
		t.Fatal("update failed")
	}
	if v, _, _ := tb.Lookup(0, 7); v != 99 {
		t.Fatalf("v = %d", v)
	}
	if ok, _ := tb.Update(0, 8, 1); ok {
		t.Fatal("update of missing key succeeded")
	}
}

func TestDeleteMissingKey(t *testing.T) {
	tb := NewTable(Config{})
	if ok, _ := tb.Delete(0, 123); ok {
		t.Fatal("delete of missing key succeeded")
	}
}

func TestREFFlagLifecycle(t *testing.T) {
	tb := NewTable(Config{})
	tb.Insert(0, 1, 10)
	// REF is set on creation (§5).
	if ref, ok := tb.Ref(1); !ok || !ref {
		t.Fatal("REF not set on insert")
	}
	// A scan clears it.
	tb.ScanPartition(0, 0, 1, func(k, v uint64, ref bool) ScanAction { return ScanClearRef })
	if ref, _ := tb.Ref(1); ref {
		t.Fatal("REF not cleared by scan")
	}
	// A lookup re-sets it.
	tb.Lookup(0, 1)
	if ref, _ := tb.Ref(1); !ref {
		t.Fatal("REF not set by lookup")
	}
}

func TestAgedRecordDetection(t *testing.T) {
	// The straggler-detection idiom: two sweeps with no intervening lookup
	// find a record whose REF flag is clear — it has aged out.
	tb := NewTable(Config{})
	tb.Insert(0, 5, 50)
	aged := 0
	sweep := func() {
		tb.ScanPartition(0, 0, 1, func(k, v uint64, ref bool) ScanAction {
			if !ref {
				aged++
				return ScanDelete
			}
			return ScanClearRef
		})
	}
	sweep()
	if aged != 0 {
		t.Fatal("fresh record reported aged")
	}
	sweep()
	if aged != 1 {
		t.Fatalf("aged = %d after second sweep", aged)
	}
	if tb.Len() != 0 {
		t.Fatal("aged record not deleted")
	}
}

func TestLookupBetweenSweepsPreventsAging(t *testing.T) {
	tb := NewTable(Config{})
	tb.Insert(0, 5, 50)
	aged := 0
	sweep := func() {
		tb.ScanPartition(0, 0, 1, func(k, v uint64, ref bool) ScanAction {
			if !ref {
				aged++
				return ScanDelete
			}
			return ScanClearRef
		})
	}
	for i := 0; i < 10; i++ {
		sweep()
		tb.Lookup(0, 5) // active traffic keeps re-referencing
	}
	if aged != 0 {
		t.Fatalf("active record aged out %d times", aged)
	}
}

func TestScanPartitionsCoverTableExactlyOnce(t *testing.T) {
	tb := NewTable(Config{Buckets: 256})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		tb.Insert(0, i, i)
	}
	const parts = 7
	seen := make(map[uint64]int)
	total := 0
	for p := 0; p < parts; p++ {
		v, _ := tb.ScanPartition(0, p, parts, func(k, _ uint64, _ bool) ScanAction {
			seen[k]++
			return ScanKeep
		})
		total += v
	}
	if total != n {
		t.Fatalf("visited %d, want %d", total, n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d visited %d times", k, c)
		}
	}
}

func TestScanCostScalesWithPartition(t *testing.T) {
	tb := NewTable(Config{Buckets: 1024})
	for i := uint64(0); i < 10000; i++ {
		tb.Insert(0, i, i)
	}
	_, fullDone := tb.ScanPartition(0, 0, 1, func(uint64, uint64, bool) ScanAction { return ScanKeep })
	// 100 partitions: each sweep should take roughly 1/100 of the time.
	var worst sim.Time
	for p := 0; p < 100; p++ {
		_, done := tb.ScanPartition(0, p, 100, func(uint64, uint64, bool) ScanAction { return ScanKeep })
		if done > worst {
			worst = done
		}
	}
	if worst*50 > fullDone {
		t.Fatalf("partitioned sweep %v not ≪ full sweep %v", worst, fullDone)
	}
}

func TestScanDeleteDuringIteration(t *testing.T) {
	tb := NewTable(Config{Buckets: 16})
	for i := uint64(0); i < 100; i++ {
		tb.Insert(0, i, i)
	}
	// Delete all even keys in one sweep; every record must still be visited.
	visited := 0
	tb.ScanPartition(0, 0, 1, func(k, _ uint64, _ bool) ScanAction {
		visited++
		if k%2 == 0 {
			return ScanDelete
		}
		return ScanKeep
	})
	if visited != 100 {
		t.Fatalf("visited %d", visited)
	}
	if tb.Len() != 50 {
		t.Fatalf("len = %d", tb.Len())
	}
	for i := uint64(0); i < 100; i++ {
		_, ok, _ := tb.Lookup(0, i)
		if ok != (i%2 == 1) {
			t.Fatalf("key %d present=%v", i, ok)
		}
	}
}

func TestScanInvalidPartitionPanics(t *testing.T) {
	tb := NewTable(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.ScanPartition(0, 3, 3, func(uint64, uint64, bool) ScanAction { return ScanKeep })
}

func TestNonPowerOfTwoBucketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable(Config{Buckets: 100})
}

func TestOpLatencyCharged(t *testing.T) {
	tb := NewTable(Config{OpLatency: 70 * sim.Nanosecond})
	_, done := tb.Insert(100, 1, 1)
	if done != 100+70*sim.Nanosecond {
		t.Fatalf("insert done = %v", done)
	}
	_, _, done = tb.Lookup(done, 1)
	if done != 100+140*sim.Nanosecond {
		t.Fatalf("lookup done = %v", done)
	}
}

func TestTablePropertyModelEquivalence(t *testing.T) {
	// The table must behave exactly like a map under a random op sequence.
	type op struct {
		Kind byte
		Key  uint8
		Val  uint64
	}
	f := func(ops []op) bool {
		tb := NewTable(Config{Buckets: 64})
		model := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key)
			switch o.Kind % 3 {
			case 0:
				ok, _ := tb.Insert(0, k, o.Val)
				_, exists := model[k]
				if ok == exists {
					return false
				}
				if !exists {
					model[k] = o.Val
				}
			case 1:
				v, ok, _ := tb.Lookup(0, k)
				mv, exists := model[k]
				if ok != exists || (ok && v != mv) {
					return false
				}
			case 2:
				ok, _ := tb.Delete(0, k)
				_, exists := model[k]
				if ok != exists {
					return false
				}
				delete(model, k)
			}
		}
		return tb.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for bit := 0; bit < 64; bit += 7 {
		a := Mix64(0x1234567890ABCDEF)
		b := Mix64(0x1234567890ABCDEF ^ 1<<bit)
		diff := popcount(a ^ b)
		if diff < 16 || diff > 48 {
			t.Fatalf("bit %d: only %d output bits flipped", bit, diff)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHashFieldsSeparatesFieldBoundaries(t *testing.T) {
	a := HashFields(0, []byte("ab"), []byte("c"))
	b := HashFields(0, []byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("field boundary ignored")
	}
}

func TestHashFieldsSeedMatters(t *testing.T) {
	if HashFields(1, []byte("x")) == HashFields(2, []byte("x")) {
		t.Fatal("seed ignored")
	}
}

func TestHashFieldsLoadBalanceUniformity(t *testing.T) {
	// Five-tuple style load balancing over 8 next hops should be roughly
	// uniform (within 3x of mean per bin for 8000 flows).
	bins := make([]int, 8)
	for i := 0; i < 8000; i++ {
		src := []byte{10, 0, byte(i >> 8), byte(i)}
		dst := []byte{10, 1, byte(i), byte(i >> 8)}
		port := []byte{byte(i), byte(i >> 3)}
		bins[HashFields(0, src, dst, port)%8]++
	}
	for i, c := range bins {
		if c < 500 || c > 1800 {
			t.Fatalf("bin %d = %d, badly skewed: %v", i, c, bins)
		}
	}
}
