package smem

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/trioml/triogo/internal/sim"
)

func TestTierLayoutIsContiguous(t *testing.T) {
	m := New(Config{})
	sram := m.TierOf(0)
	if sram.Kind != TierSRAM {
		t.Fatalf("addr 0 in %v", sram.Kind)
	}
	cache := m.TierOf(sram.Size)
	if cache.Kind != TierCache {
		t.Fatalf("addr %#x in %v", sram.Size, cache.Kind)
	}
	dram := m.TierOf(cache.Base + cache.Size)
	if dram.Kind != TierDRAM {
		t.Fatalf("after cache in %v", dram.Kind)
	}
}

func TestTierOfOutsideSpacePanics(t *testing.T) {
	m := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.TierOf(1 << 62)
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	m := New(Config{SRAMSize: 64})
	a := m.Alloc(TierSRAM, 5)
	b := m.Alloc(TierSRAM, 8)
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("unaligned allocs %#x %#x", a, b)
	}
	if b != a+8 {
		t.Fatalf("expected bump allocation, got %#x then %#x", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	m.Alloc(TierSRAM, 64)
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 64)
	data := bytes.Repeat([]byte{0xA5, 0x5A}, 32)
	m.Write(0, addr, data)
	got, _ := m.Read(0, addr, 64)
	if !bytes.Equal(got, data) {
		t.Fatal("read != write")
	}
}

func TestTxnSizeEnforced(t *testing.T) {
	m := New(Config{})
	for _, bad := range []int{0, 4, 7, 9, 72} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("size %d should panic", bad)
				}
			}()
			m.Read(0, 0, bad)
		}()
	}
	for _, ok := range []int{8, 16, 24, 64} {
		if got, _ := m.Read(0, 0, ok); len(got) != ok {
			t.Fatalf("size %d read %d bytes", ok, len(got))
		}
	}
}

func TestReadLatencyByTier(t *testing.T) {
	m := New(Config{})
	sramAddr := m.Alloc(TierSRAM, 8)
	dramAddr := m.Alloc(TierDRAM, 8)
	_, sramDone := m.Read(0, sramAddr, 8)
	_, dramDone := m.Read(0, dramAddr, 8)
	if sramDone < 70*sim.Nanosecond || sramDone > 80*sim.Nanosecond {
		t.Fatalf("SRAM read latency %v, want ≈70ns", sramDone)
	}
	if dramDone < 400*sim.Nanosecond || dramDone > 410*sim.Nanosecond {
		t.Fatalf("DRAM read latency %v, want ≈400ns", dramDone)
	}
}

func TestPagesAreZeroInitialized(t *testing.T) {
	m := New(Config{})
	got, _ := m.Read(0, m.tiers[TierDRAM].Base+12345*8, 8)
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh memory not zero")
		}
	}
}

func TestCounterIncMatchesFilterExample(t *testing.T) {
	// §3.2: each Packet/Byte Counter is 16 bytes; CounterIncPhys bumps the
	// packet half by 1 and the byte half by pkt_len.
	m := New(Config{})
	base := m.Alloc(TierSRAM, 32) // two counters, as in Fig. 6
	m.CounterInc(0, base, 100)
	m.CounterInc(0, base, 50)
	m.CounterInc(0, base+16, 1500)
	pkts, byteCnt := m.Counter(base)
	if pkts != 2 || byteCnt != 150 {
		t.Fatalf("counter 0 = (%d,%d), want (2,150)", pkts, byteCnt)
	}
	pkts, byteCnt = m.Counter(base + 16)
	if pkts != 1 || byteCnt != 1500 {
		t.Fatalf("counter 1 = (%d,%d), want (1,1500)", pkts, byteCnt)
	}
}

func TestFetchAndOps(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 8)
	m.WriteUint64(0, addr, 0b1100)
	old, _ := m.FetchAndOp(0, addr, FetchOr, 0b0011)
	if old != 0b1100 {
		t.Fatalf("or: old = %b", old)
	}
	old, _ = m.FetchAndOp(0, addr, FetchAnd, 0b1010)
	if old != 0b1111 {
		t.Fatalf("and: old = %b", old)
	}
	old, _ = m.FetchAndOp(0, addr, FetchXor, 0b1111)
	if old != 0b1010 {
		t.Fatalf("xor: old = %b", old)
	}
	old, _ = m.FetchAndOp(0, addr, FetchClear, 0b0100)
	if old != 0b0101 {
		t.Fatalf("clear: old = %b", old)
	}
	v, _ := m.ReadUint64(0, addr)
	if v != 0b0001 {
		t.Fatalf("final = %b", v)
	}
}

func TestFetchAndSwap(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 8)
	m.WriteUint64(0, addr, 111)
	old, _ := m.FetchAndSwap(0, addr, 222)
	if old != 111 {
		t.Fatalf("old = %d", old)
	}
	v, _ := m.ReadUint64(0, addr)
	if v != 222 {
		t.Fatalf("new = %d", v)
	}
}

func TestMaskedWrite(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 8)
	m.WriteUint64(0, addr, 0xFFFF_FFFF_FFFF_FFFF)
	m.MaskedWrite(0, addr, 0x0000_0000_1234_0000, 0x0000_0000_FFFF_0000)
	v, _ := m.ReadUint64(0, addr)
	if v != 0xFFFF_FFFF_1234_FFFF {
		t.Fatalf("v = %#x", v)
	}
}

func TestAdd32SignedWraparound(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 8)
	if nv, _ := m.Add32(0, addr, -5); nv != -5 {
		t.Fatalf("nv = %d", nv)
	}
	if nv, _ := m.Add32(0, addr, 10); nv != 5 {
		t.Fatalf("nv = %d", nv)
	}
}

func TestAddVector32AggregatesLikeTrioML(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierDRAM, 4*16)
	a := []int32{1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16}
	b := []int32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160}
	m.AddVector32(0, addr, a)
	m.AddVector32(0, addr, b)
	got, _ := m.ReadVector32(0, addr, 16)
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], a[i]+b[i])
		}
	}
}

func TestAddVector32OddCount(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 32)
	m.AddVector32(0, addr, []int32{1, 2, 3})
	got, _ := m.ReadVector32(0, addr, 4)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestAddVectorCommutesProperty(t *testing.T) {
	// Aggregation order must not matter: sum(a then b) == sum(b then a).
	f := func(a, b []int32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		m1 := New(Config{})
		m2 := New(Config{})
		a1 := m1.Alloc(TierSRAM, uint64(4*n))
		a2 := m2.Alloc(TierSRAM, uint64(4*n))
		m1.AddVector32(0, a1, a)
		m1.AddVector32(0, a1, b)
		m2.AddVector32(0, a2, b)
		m2.AddVector32(0, a2, a)
		g1, _ := m1.ReadVector32(0, a1, n)
		g2, _ := m2.ReadVector32(0, a2, n)
		for i := range g1 {
			if g1[i] != g2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSerializationBackpressure(t *testing.T) {
	// Hammer one address: every op lands on the same engine and the engine
	// serializes them at 2 cycles per add, so the k-th completes no earlier
	// than 2k cycles + tier latency.
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 8)
	var last sim.Time
	const n = 100
	for i := 0; i < n; i++ {
		_, last = m.Add32(0, addr, 1)
	}
	wantMin := sim.Time(2*n)*m.Config().CycleTime + m.TierOf(addr).Latency
	if last < wantMin {
		t.Fatalf("last completion %v, want >= %v", last, wantMin)
	}
	stats := m.Stats()
	eng := stats[(addr/8)%uint64(len(stats))]
	if eng.Ops != n || eng.Backlogged != n-1 {
		t.Fatalf("engine stats = %+v", eng)
	}
}

func TestEnginesParallelAcrossBanks(t *testing.T) {
	// Spreading ops across 12 engines must NOT serialize: the completion
	// time of 12 simultaneous adds to distinct banks equals one add each.
	m := New(Config{})
	base := m.Alloc(TierSRAM, 12*8)
	var worst sim.Time
	for i := uint64(0); i < 12; i++ {
		_, done := m.Add64(0, base+i*8, 1)
		if done > worst {
			worst = done
		}
	}
	want := sim.Time(addCycles)*m.Config().CycleTime + m.TierOf(base).Latency
	if worst != want {
		t.Fatalf("parallel adds completed at %v, want %v", worst, want)
	}
}

func TestSingleEngineAblationSerializes(t *testing.T) {
	// DESIGN ablation: with one engine the same parallel workload serializes.
	m := New(Config{NumRMWEngines: 1})
	base := m.Alloc(TierSRAM, 12*8)
	var worst sim.Time
	for i := uint64(0); i < 12; i++ {
		_, done := m.Add64(0, base+i*8, 1)
		if done > worst {
			worst = done
		}
	}
	want := sim.Time(12*addCycles)*m.Config().CycleTime + m.TierOf(base).Latency
	if worst != want {
		t.Fatalf("serialized adds completed at %v, want %v", worst, want)
	}
}

func TestPolicerConformsWithinRate(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 24)
	cfg := PolicerConfig{RateBytesPerSec: 1_000_000, BurstBytes: 1500}
	m.PolicerInit(addr, cfg)
	if ok, _ := m.Police(0, addr, cfg, 1500); !ok {
		t.Fatal("burst-sized packet should conform on a full bucket")
	}
	if ok, _ := m.Police(0, addr, cfg, 1500); ok {
		t.Fatal("second immediate packet should exceed")
	}
	// After 1.5 ms at 1 MB/s, 1500 bytes of tokens have accrued.
	now := sim.Time(1500) * sim.Microsecond
	if ok, _ := m.Police(now, addr, cfg, 1500); !ok {
		t.Fatal("packet after refill should conform")
	}
}

func TestPolicerTokensCapAtBurst(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 24)
	cfg := PolicerConfig{RateBytesPerSec: 1_000_000_000, BurstBytes: 100}
	m.PolicerInit(addr, cfg)
	// A long idle period must not accumulate more than one burst.
	now := 10 * sim.Second
	if ok, _ := m.Police(now, addr, cfg, 100); !ok {
		t.Fatal("first packet conforms")
	}
	if ok, _ := m.Police(now, addr, cfg, 100); ok {
		t.Fatal("tokens exceeded burst cap")
	}
}

func TestReadVector32CrossesTxnBoundary(t *testing.T) {
	m := New(Config{})
	addr := m.Alloc(TierSRAM, 4*40)
	vals := make([]int32, 40) // 160 bytes: 3 transactions
	for i := range vals {
		vals[i] = int32(i * i)
	}
	m.AddVector32(0, addr, vals)
	got, _ := m.ReadVector32(0, addr, 40)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("lane %d = %d", i, got[i])
		}
	}
}

func TestRawBypassesAccounting(t *testing.T) {
	m := New(Config{})
	m.WriteRaw(64, []byte{1, 2, 3})
	if got := m.ReadRaw(64, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("raw = %v", got)
	}
	if m.TotalOps() != 0 {
		t.Fatal("raw access charged an engine")
	}
}
