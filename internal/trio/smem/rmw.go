package smem

import (
	"encoding/binary"

	"github.com/trioml/triogo/internal/sim"
)

// This file implements the "rich variety of read-modify-write operations"
// of §2.3: Packet/Byte Counters, Policers, Logical Fetch-and-Ops
// (And/Or/Xor/Clear), Fetch-and-Swap, Masked Write, and 32-bit add. Each
// runs inside the owning RMW engine: the data never moves to the requesting
// thread, and concurrent requests to one location serialize at the engine.

// addCycles is the engine occupancy of one 8-byte add: "each add operation
// takes two cycles" (§6.3).
const addCycles = 2

// CounterInc implements the CounterIncPhys XTXN (§3.2): a 16-byte
// Packet/Byte Counter at addr has its packet half incremented by 1 and its
// byte half incremented by pktLen.
func (m *Memory) CounterInc(now sim.Time, addr uint64, pktLen uint32) sim.Time {
	var b [16]byte
	m.load(addr, b[:])
	binary.BigEndian.PutUint64(b[0:8], binary.BigEndian.Uint64(b[0:8])+1)
	binary.BigEndian.PutUint64(b[8:16], binary.BigEndian.Uint64(b[8:16])+uint64(pktLen))
	m.store(addr, b[:])
	done := m.occupy(m.engineFor(addr), now, serviceCycles(16, addCycles))
	return m.complete(now, addr, done)
}

// Counter reads back a Packet/Byte Counter via the control plane.
func (m *Memory) Counter(addr uint64) (packets, bytes uint64) {
	var b [16]byte
	m.load(addr, b[:])
	return binary.BigEndian.Uint64(b[0:8]), binary.BigEndian.Uint64(b[8:16])
}

// FetchOp is a logical read-modify-write operator.
type FetchOp int

// Logical fetch-and-operations supported by the engines.
const (
	FetchAnd FetchOp = iota
	FetchOr
	FetchXor
	FetchClear // clear the bits set in the operand (AND NOT)
)

// FetchAndOp atomically applies op(old, operand) to the 8-byte word at addr
// and returns the previous value.
func (m *Memory) FetchAndOp(now sim.Time, addr uint64, op FetchOp, operand uint64) (old uint64, done sim.Time) {
	var b [8]byte
	m.load(addr, b[:])
	old = binary.BigEndian.Uint64(b[:])
	var nv uint64
	switch op {
	case FetchAnd:
		nv = old & operand
	case FetchOr:
		nv = old | operand
	case FetchXor:
		nv = old ^ operand
	case FetchClear:
		nv = old &^ operand
	default:
		panic("smem: unknown fetch op")
	}
	binary.BigEndian.PutUint64(b[:], nv)
	m.store(addr, b[:])
	return old, m.complete(now, addr, m.occupy(m.engineFor(addr), now, addCycles))
}

// FetchAndSwap atomically replaces the 8-byte word at addr and returns the
// previous value.
func (m *Memory) FetchAndSwap(now sim.Time, addr uint64, v uint64) (old uint64, done sim.Time) {
	var b [8]byte
	m.load(addr, b[:])
	old = binary.BigEndian.Uint64(b[:])
	binary.BigEndian.PutUint64(b[:], v)
	m.store(addr, b[:])
	return old, m.complete(now, addr, m.occupy(m.engineFor(addr), now, addCycles))
}

// MaskedWrite writes (old &^ mask) | (v & mask) to the 8-byte word at addr.
func (m *Memory) MaskedWrite(now sim.Time, addr uint64, v, mask uint64) sim.Time {
	var b [8]byte
	m.load(addr, b[:])
	old := binary.BigEndian.Uint64(b[:])
	binary.BigEndian.PutUint64(b[:], old&^mask|v&mask)
	m.store(addr, b[:])
	return m.complete(now, addr, m.occupy(m.engineFor(addr), now, addCycles))
}

// Add32 atomically adds delta to the 32-bit word at addr (4-byte aligned)
// and returns the new value. This is the primitive Trio-ML's gradient
// summation is built on.
func (m *Memory) Add32(now sim.Time, addr uint64, delta int32) (newVal int32, done sim.Time) {
	var b [4]byte
	m.load(addr, b[:])
	nv := int32(binary.BigEndian.Uint32(b[:])) + delta
	binary.BigEndian.PutUint32(b[:], uint32(nv))
	m.store(addr, b[:])
	return nv, m.complete(now, addr, m.occupy(m.engineFor(addr&^7), now, addCycles))
}

// Add64 atomically adds delta to the 8-byte word at addr.
func (m *Memory) Add64(now sim.Time, addr uint64, delta uint64) (newVal uint64, done sim.Time) {
	var b [8]byte
	m.load(addr, b[:])
	nv := binary.BigEndian.Uint64(b[:]) + delta
	binary.BigEndian.PutUint64(b[:], nv)
	m.store(addr, b[:])
	return nv, m.complete(now, addr, m.occupy(m.engineFor(addr), now, addCycles))
}

// AddVector32 adds a vector of int32 deltas to consecutive 32-bit words
// starting at addr. Each 8-byte pair of lanes is one engine add (two cycles),
// so a 16-gradient chunk costs 8 engine-word operations — the accounting
// behind the 6×10⁹ adds/s/PFE figure of §6.3. It returns the completion time
// of the last word (engines work in parallel across banks).
func (m *Memory) AddVector32(now sim.Time, addr uint64, deltas []int32) sim.Time {
	var latest sim.Time
	for i := 0; i < len(deltas); i += 2 {
		wordAddr := addr + uint64(4*i)
		if w := m.word(wordAddr); w != nil {
			v0 := int32(binary.BigEndian.Uint32(w[0:4])) + deltas[i]
			binary.BigEndian.PutUint32(w[0:4], uint32(v0))
			if i+1 < len(deltas) {
				v1 := int32(binary.BigEndian.Uint32(w[4:8])) + deltas[i+1]
				binary.BigEndian.PutUint32(w[4:8], uint32(v1))
			}
		} else {
			var b [8]byte
			m.load(wordAddr, b[:])
			v0 := int32(binary.BigEndian.Uint32(b[0:4])) + deltas[i]
			binary.BigEndian.PutUint32(b[0:4], uint32(v0))
			if i+1 < len(deltas) {
				v1 := int32(binary.BigEndian.Uint32(b[4:8])) + deltas[i+1]
				binary.BigEndian.PutUint32(b[4:8], uint32(v1))
			}
			m.store(wordAddr, b[:])
		}
		done := m.complete(now, wordAddr, m.occupy(m.engineFor(wordAddr), now, addCycles))
		if done > latest {
			latest = done
		}
	}
	return latest
}

// ReadVector32 reads count consecutive 32-bit words starting at addr via the
// data path in 64-byte transactions, returning values and completion time.
func (m *Memory) ReadVector32(now sim.Time, addr uint64, count int) ([]int32, sim.Time) {
	return m.ReadVector32Append(now, addr, count, make([]int32, 0, count))
}

// ReadVector32Append is ReadVector32 appending into dst (returned possibly
// regrown): identical transaction accounting, no allocation when dst has
// capacity.
func (m *Memory) ReadVector32Append(now sim.Time, addr uint64, count int, dst []int32) ([]int32, sim.Time) {
	var latest sim.Time
	var b [64]byte
	read := 0
	for off := 0; off < 4*count; off += 64 {
		n := 4*count - off
		if n > 64 {
			n = 64
		}
		n = (n + 7) &^ 7
		done := m.ReadInto(now, addr+uint64(off), b[:n])
		if done > latest {
			latest = done
		}
		for i := 0; i*4 < n && read < count; i++ {
			dst = append(dst, int32(binary.BigEndian.Uint32(b[4*i:])))
			read++
		}
	}
	return dst, latest
}

// Policer state occupies 24 bytes: 8-byte token count (milli-tokens),
// 8-byte last-refill virtual timestamp, 8 bytes reserved.

// PolicerConfig parameterizes a single-rate token-bucket policer.
type PolicerConfig struct {
	RateBytesPerSec uint64 // token refill rate
	BurstBytes      uint64 // bucket depth
}

// PolicerInit initializes policer state at addr (control plane).
func (m *Memory) PolicerInit(addr uint64, cfg PolicerConfig) {
	var b [24]byte
	binary.BigEndian.PutUint64(b[0:8], cfg.BurstBytes*1000) // start full, milli-bytes
	binary.BigEndian.PutUint64(b[8:16], 0)
	m.store(addr, b[:])
}

// Police charges pktLen bytes against the policer at addr and reports
// whether the packet conforms. Refill is computed lazily from the virtual
// clock, exactly as a hardware policer block does from its cycle counter.
func (m *Memory) Police(now sim.Time, addr uint64, cfg PolicerConfig, pktLen uint32) (conform bool, done sim.Time) {
	var b [24]byte
	m.load(addr, b[:])
	tokens := binary.BigEndian.Uint64(b[0:8])
	last := sim.Time(binary.BigEndian.Uint64(b[8:16]))
	if now > last {
		elapsed := uint64(now - last)
		// milli-bytes accrued: rate[B/s] * elapsed[ns] / 1e9 * 1000
		tokens += cfg.RateBytesPerSec * elapsed / 1_000_000
		if max := cfg.BurstBytes * 1000; tokens > max {
			tokens = max
		}
	}
	need := uint64(pktLen) * 1000
	if tokens >= need {
		tokens -= need
		conform = true
	}
	binary.BigEndian.PutUint64(b[0:8], tokens)
	binary.BigEndian.PutUint64(b[8:16], uint64(now))
	m.store(addr, b[:])
	return conform, m.complete(now, addr, m.occupy(m.engineFor(addr), now, serviceCycles(24, addCycles)))
}
