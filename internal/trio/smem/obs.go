package smem

import (
	"fmt"

	"github.com/trioml/triogo/internal/obs"
)

// tierLabel names tiers in metric labels (shorter than TierKind.String,
// which is prose for error messages).
func tierLabel(k TierKind) string {
	switch k {
	case TierSRAM:
		return "sram"
	case TierCache:
		return "cache"
	}
	return "dram"
}

// RegisterObs exports the shared-memory system's activity into a metrics
// registry: per-RMW-bank contention counters (labelled bank="<i>") and two
// latency histograms — PPE-observed access latency per tier and RMW-engine
// queueing delay. The histograms Observe on the data path with atomic adds
// only; with no registry attached the data path keeps its single obsOn
// branch and allocates nothing.
func (m *Memory) RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	for i := range m.engines {
		e := &m.engines[i]
		l := fmt.Sprintf("bank=\"%d\"", i)
		r.CounterFunc(obs.Desc{
			Name: "triogo_smem_rmw_ops_total", Unit: "ops", Labels: l,
			Help: "Requests serviced by this RMW engine bank.",
		}, func() uint64 { return e.ops })
		r.CounterFunc(obs.Desc{
			Name: "triogo_smem_rmw_busy_cycles_total", Unit: "cycles", Labels: l,
			Help: "Service cycles consumed by this bank (8 bytes per cycle; adds cost 2 cycles per word).",
		}, func() uint64 { return e.busyCycles })
		r.CounterFunc(obs.Desc{
			Name: "triogo_smem_rmw_backlogged_total", Unit: "requests", Labels: l,
			Help: "Requests that found a non-empty backlog on this bank (contention events).",
		}, func() uint64 { return e.backlogged })
		r.GaugeFunc(obs.Desc{
			Name: "triogo_smem_rmw_max_queueing_ns", Unit: "nanoseconds", Labels: l,
			Help: "Worst queueing delay any request saw on this bank.",
		}, func() float64 { return float64(e.maxQueueing) })
	}
	// Access latency spans queueing + service + tier latency: ~70ns floors
	// for SRAM up through DRAM round trips with deep backlogs.
	bounds := obs.ExpBuckets(64, 2, 12) // 64ns .. 131µs
	for k := TierKind(0); k < numTiers; k++ {
		m.tierHist[k] = r.Histogram(obs.Desc{
			Name: "triogo_smem_access_latency_ns", Unit: "nanoseconds",
			Labels: fmt.Sprintf("tier=%q", tierLabel(k)),
			Help:   "PPE-observed completion latency of data-path accesses, by tier.",
		}, bounds)
	}
	m.queueHist = r.Histogram(obs.Desc{
		Name: "triogo_smem_rmw_queueing_ns", Unit: "nanoseconds",
		Help: "Queueing delay ahead of each request at its RMW bank (0 when the bank was idle).",
	}, obs.ExpBuckets(1, 4, 10)) // 1ns .. 262µs, first bucket isolates idle banks
	m.obsOn = true
}
