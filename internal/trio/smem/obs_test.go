package smem

import (
	"strings"
	"testing"

	"github.com/trioml/triogo/internal/obs"
	"github.com/trioml/triogo/internal/sim"
)

func TestRegisterObsExportsBankAndTierSeries(t *testing.T) {
	m := New(Config{NumRMWEngines: 2})
	reg := obs.NewRegistry()
	m.RegisterObs(reg)

	sramAddr := m.Alloc(TierSRAM, 64)
	dramAddr := m.Alloc(TierDRAM, 64)
	now := sim.Time(0)
	for i := 0; i < 4; i++ {
		_, done := m.Read(now, sramAddr, 8)
		if done <= now {
			t.Fatalf("read completed at %v, not after issue %v", done, now)
		}
	}
	m.Write(now, dramAddr, make([]byte, 8))

	snap := reg.Snapshot()
	var ops float64
	for _, bank := range []string{"0", "1"} {
		if v, ok := snap[`triogo_smem_rmw_ops_total{bank="`+bank+`"}`].(float64); ok {
			ops += v
		}
	}
	if ops != 5 {
		t.Errorf("total bank ops = %v, want 5", ops)
	}

	sram, ok := snap[`triogo_smem_access_latency_ns{tier="sram"}`].(map[string]any)
	if !ok || sram["count"] != uint64(4) {
		t.Errorf("sram latency histogram = %v, want 4 observations", snap[`triogo_smem_access_latency_ns{tier="sram"}`])
	}
	dram, ok := snap[`triogo_smem_access_latency_ns{tier="dram"}`].(map[string]any)
	if !ok || dram["count"] != uint64(1) {
		t.Errorf("dram latency histogram = %v, want 1 observation", snap[`triogo_smem_access_latency_ns{tier="dram"}`])
	}
	// SRAM floor is ~70ns, DRAM ~400ns: sums must reflect the tier split.
	if s, d := sram["sum"].(float64), dram["sum"].(float64); s < 4*70 || d < 400 {
		t.Errorf("latency sums sram=%v dram=%v below tier floors", s, d)
	}
	queue, ok := snap["triogo_smem_rmw_queueing_ns"].(map[string]any)
	if !ok || queue["count"] != uint64(5) {
		t.Errorf("queueing histogram = %v, want 5 observations", snap["triogo_smem_rmw_queueing_ns"])
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`triogo_smem_access_latency_ns_bucket{tier="sram",le="+Inf"} 4`,
		`triogo_smem_rmw_ops_total{bank="0"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// TestContentionFeedsQueueingHistogram issues a burst at one address so the
// owning bank backlogs, and checks the queueing histogram sees the delay.
func TestContentionFeedsQueueingHistogram(t *testing.T) {
	m := New(Config{NumRMWEngines: 1})
	reg := obs.NewRegistry()
	m.RegisterObs(reg)

	addr := m.Alloc(TierSRAM, 8)
	for i := 0; i < 10; i++ {
		m.Add64(0, addr, 1) // all at t=0: each request queues behind the last
	}
	snap := reg.Snapshot()
	q := snap["triogo_smem_rmw_queueing_ns"].(map[string]any)
	if q["count"] != uint64(10) || q["sum"].(float64) <= 0 {
		t.Errorf("queueing histogram = %v, want 10 observations with positive sum", q)
	}
	if v := snap[`triogo_smem_rmw_backlogged_total{bank="0"}`]; v != 9.0 {
		t.Errorf("backlogged = %v, want 9 (all but the first)", v)
	}
}

// TestObsOffChangesNothing pins that an uninstrumented Memory returns the
// same completion times as an instrumented one (observation is passive).
func TestObsOffChangesNothing(t *testing.T) {
	run := func(attach bool) sim.Time {
		m := New(Config{NumRMWEngines: 2})
		if attach {
			m.RegisterObs(obs.NewRegistry())
		}
		addr := m.Alloc(TierCache, 64)
		var last sim.Time
		for i := 0; i < 16; i++ {
			_, last = m.Read(sim.Time(i), addr, 32)
		}
		return last
	}
	if off, on := run(false), run(true); off != on {
		t.Errorf("completion diverges: plain %v, instrumented %v", off, on)
	}
}
