// Package smem models Trio's Shared Memory System (§2.3 of the paper): a
// single unified address space backed by three tiers (on-chip SRAM, the
// on-chip cache fronting off-chip DRAM, and off-chip DRAM itself) with all
// accesses funnelled through banked read-modify-write (RMW) engines.
//
// The behavioural contract reproduced here:
//
//   - All data accesses (read, write, read-modify-write) are processed by an
//     RMW engine close to memory; concurrent updates to one location are
//     serialized by the owning engine, so no coherence traffic is needed.
//   - Each engine processes requests at 8 bytes per clock cycle; an add takes
//     two cycles (§6.3). Engine load beyond that backpressures through the
//     crossbar, which we account for as queueing delay.
//   - Tiers are architecturally equivalent and differ only in capacity and
//     latency: ~70 ns to SRAM, ~300–400 ns to the off-chip tiers (§2.3).
//
// Timing is virtual (internal/sim). Every operation returns both its result
// and the virtual completion time so callers (PPE threads issuing XTXNs) can
// model synchronous stalls or asynchronous continuations.
package smem

import (
	"encoding/binary"
	"fmt"

	"github.com/trioml/triogo/internal/faults"
	"github.com/trioml/triogo/internal/obs"
	"github.com/trioml/triogo/internal/sim"
)

// TierKind identifies one of the three memory tiers.
type TierKind int

const (
	// TierSRAM is the heavily multi-banked on-chip SRAM.
	TierSRAM TierKind = iota
	// TierCache is the multi-megabyte on-chip cache in front of DRAM.
	TierCache
	// TierDRAM is the several-gigabyte off-chip DRAM.
	TierDRAM
	numTiers
)

func (k TierKind) String() string {
	switch k {
	case TierSRAM:
		return "on-chip SRAM"
	case TierCache:
		return "DRAM cache"
	case TierDRAM:
		return "off-chip DRAM"
	}
	return fmt.Sprintf("TierKind(%d)", int(k))
}

// Tier describes one address range of the unified space.
type Tier struct {
	Kind    TierKind
	Base    uint64   // first byte of the tier's address range
	Size    uint64   // bytes
	Latency sim.Time // PPE-observed access latency
}

// Config sizes a shared memory system. The defaults follow §2.3 and §6.3.
type Config struct {
	SRAMSize      uint64   // typically 2–8 MB
	CacheSize     uint64   // typically 8–24 MB
	DRAMSize      uint64   // several GB
	SRAMLatency   sim.Time // ≈70 ns
	CacheLatency  sim.Time // ≈300 ns
	DRAMLatency   sim.Time // ≈400 ns
	NumRMWEngines int      // 12 in the generation measured in §6.3
	CycleTime     sim.Time // 1 ns at the 1 GHz clock of §6.3
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		SRAMSize:      4 << 20,
		CacheSize:     16 << 20,
		DRAMSize:      2 << 30,
		SRAMLatency:   70 * sim.Nanosecond,
		CacheLatency:  300 * sim.Nanosecond,
		DRAMLatency:   400 * sim.Nanosecond,
		NumRMWEngines: 12,
		CycleTime:     1 * sim.Nanosecond,
	}
}

const pageSize = 4096

// engine is one read-modify-write engine: a serialization point for a slice
// of the address space. Occupancy is tracked as a cycle backlog that drains
// at one cycle per CycleTime: queueing delay appears exactly when offered
// load exceeds the engine's 8-bytes-per-cycle service rate. (Threads run to
// completion in the simulator and issue operations with future timestamps;
// backlog accounting keeps ops issued out of virtual-time order from
// fabricating contention that the hardware would not see.)
type engine struct {
	lastTime    sim.Time
	backlog     uint64 // unserviced cycles as of lastTime
	ops         uint64
	busyCycles  uint64
	backlogged  uint64 // requests that found a backlog
	maxQueueing sim.Time
}

// Memory is a shared memory system instance. It is not safe for concurrent
// use; the simulation is single-threaded by design.
type Memory struct {
	cfg     Config
	tiers   [numTiers]Tier
	pages   map[uint64]*[pageSize]byte
	engines []engine
	allocs  [numTiers]uint64 // bump-allocator cursors, relative to tier base

	// One-entry page cache: data-path access runs in tight sequential
	// bursts (gradient vectors, record fields), so the last page hit
	// answers nearly every lookup without touching the page map.
	lastPageIdx uint64
	lastPage    *[pageSize]byte

	// Histograms attached by RegisterObs; obsOn keeps the default data
	// path to a single predictable branch.
	obsOn     bool
	tierHist  [numTiers]*obs.Histogram
	queueHist *obs.Histogram

	faults *faults.MemInjector // nil: bank-error injection off (the default)
}

// SetFaults attaches a bank-error injector (nil: off). An injected bank
// error models a detected-and-retried ECC event on the owning RMW engine:
// the request's data is exact, but it occupies the engine for the injector's
// extra retry cycles, and the delay backpressures through the engine's
// backlog exactly like real load.
func (m *Memory) SetFaults(f *faults.MemInjector) { m.faults = f }

// New builds a memory system from cfg; zero fields take defaults.
func New(cfg Config) *Memory {
	def := DefaultConfig()
	if cfg.SRAMSize == 0 {
		cfg.SRAMSize = def.SRAMSize
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = def.CacheSize
	}
	if cfg.DRAMSize == 0 {
		cfg.DRAMSize = def.DRAMSize
	}
	if cfg.SRAMLatency == 0 {
		cfg.SRAMLatency = def.SRAMLatency
	}
	if cfg.CacheLatency == 0 {
		cfg.CacheLatency = def.CacheLatency
	}
	if cfg.DRAMLatency == 0 {
		cfg.DRAMLatency = def.DRAMLatency
	}
	if cfg.NumRMWEngines == 0 {
		cfg.NumRMWEngines = def.NumRMWEngines
	}
	if cfg.CycleTime == 0 {
		cfg.CycleTime = def.CycleTime
	}
	m := &Memory{
		cfg:     cfg,
		pages:   make(map[uint64]*[pageSize]byte),
		engines: make([]engine, cfg.NumRMWEngines),
	}
	m.tiers[TierSRAM] = Tier{Kind: TierSRAM, Base: 0, Size: cfg.SRAMSize, Latency: cfg.SRAMLatency}
	m.tiers[TierCache] = Tier{Kind: TierCache, Base: cfg.SRAMSize, Size: cfg.CacheSize, Latency: cfg.CacheLatency}
	m.tiers[TierDRAM] = Tier{Kind: TierDRAM, Base: cfg.SRAMSize + cfg.CacheSize, Size: cfg.DRAMSize, Latency: cfg.DRAMLatency}
	return m
}

// Config reports the configuration in effect (with defaults applied).
func (m *Memory) Config() Config { return m.cfg }

// TierOf reports which tier an address belongs to.
func (m *Memory) TierOf(addr uint64) Tier {
	for _, t := range m.tiers {
		if addr >= t.Base && addr < t.Base+t.Size {
			return t
		}
	}
	panic(fmt.Sprintf("smem: address %#x outside unified address space", addr))
}

// Alloc reserves size bytes in the given tier (control-plane operation: job
// configuration allocates aggregation buffers and record stores this way).
// The returned address is 8-byte aligned.
func (m *Memory) Alloc(kind TierKind, size uint64) uint64 {
	t := &m.tiers[kind]
	cur := (m.allocs[kind] + 7) &^ 7
	if cur+size > t.Size {
		panic(fmt.Sprintf("smem: %v exhausted (%d of %d bytes used, need %d)", kind, cur, t.Size, size))
	}
	m.allocs[kind] = cur + size
	return t.Base + cur
}

// AllocBytes reports the bytes currently allocated in a tier.
func (m *Memory) AllocBytes(kind TierKind) uint64 { return m.allocs[kind] }

// engineFor maps an 8-byte-aligned address range to its owning RMW engine.
// Interleaving at 8-byte granularity spreads hot structures across engines,
// which is what lets aggregate RMW bandwidth scale with engine count.
func (m *Memory) engineFor(addr uint64) *engine {
	return &m.engines[(addr/8)%uint64(len(m.engines))]
}

// page returns the backing page containing addr, allocating it on demand.
func (m *Memory) page(addr uint64) *[pageSize]byte {
	idx := addr / pageSize
	if p := m.lastPage; p != nil && idx == m.lastPageIdx {
		return p
	}
	p, ok := m.pages[idx]
	if !ok {
		p = new([pageSize]byte)
		m.pages[idx] = p
	}
	m.lastPageIdx, m.lastPage = idx, p
	return p
}

// word returns a direct view of the 8-byte word at addr when it does not
// straddle a page boundary (always true for the 8-byte-aligned addresses the
// RMW ops use), or nil when the caller must fall back to load/store.
func (m *Memory) word(addr uint64) []byte {
	off := addr % pageSize
	if off+8 > pageSize {
		return nil
	}
	p := m.page(addr)
	return p[off : off+8 : off+8]
}

func (m *Memory) load(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr)
		off := addr % pageSize
		n := copy(b, p[off:])
		b = b[n:]
		addr += uint64(n)
	}
}

func (m *Memory) store(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr)
		off := addr % pageSize
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// serviceCycles converts a request size to engine occupancy: 8 bytes per
// cycle, with read-modify-write ops costing opCycles per 8-byte word.
func serviceCycles(size int, opCyclesPerWord uint64) uint64 {
	words := uint64((size + 7) / 8)
	if words == 0 {
		words = 1
	}
	return words * opCyclesPerWord
}

// occupy charges an engine for a request issued at 'now' and returns the
// virtual time at which the engine finishes the request.
func (m *Memory) occupy(e *engine, now sim.Time, cycles uint64) sim.Time {
	if m.faults != nil {
		cycles += m.faults.BankError()
	}
	if now > e.lastTime {
		elapsed := uint64((now - e.lastTime) / m.cfg.CycleTime)
		if elapsed >= e.backlog {
			e.backlog = 0
		} else {
			e.backlog -= elapsed
		}
		e.lastTime = now
	}
	queue := sim.Time(e.backlog) * m.cfg.CycleTime
	if queue > 0 {
		e.backlogged++
		if queue > e.maxQueueing {
			e.maxQueueing = queue
		}
	}
	if m.obsOn {
		m.queueHist.Observe(float64(queue))
	}
	e.backlog += cycles
	e.ops++
	e.busyCycles += cycles
	return now + queue + sim.Time(cycles)*m.cfg.CycleTime
}

// latencyOf is TierOf reduced to the latency field: a branch ladder over the
// precomputed tier boundaries instead of a struct-copying scan.
func (m *Memory) latencyOf(addr uint64) sim.Time {
	if addr < m.tiers[TierCache].Base {
		return m.tiers[TierSRAM].Latency
	}
	if addr < m.tiers[TierDRAM].Base {
		return m.tiers[TierCache].Latency
	}
	if addr < m.tiers[TierDRAM].Base+m.tiers[TierDRAM].Size {
		return m.tiers[TierDRAM].Latency
	}
	panic(fmt.Sprintf("smem: address %#x outside unified address space", addr))
}

// tierIdx is latencyOf reduced to the tier index, same branch ladder.
func (m *Memory) tierIdx(addr uint64) TierKind {
	if addr < m.tiers[TierCache].Base {
		return TierSRAM
	}
	if addr < m.tiers[TierDRAM].Base {
		return TierCache
	}
	return TierDRAM
}

// complete computes the PPE-observed completion time of a request issued at
// now to addr whose engine finishes at engineDone. With RegisterObs
// attached it also feeds the per-tier latency histogram (queueing + service
// + tier latency, the full PPE-observed access time).
func (m *Memory) complete(now sim.Time, addr uint64, engineDone sim.Time) sim.Time {
	done := engineDone + m.latencyOf(addr)
	if m.obsOn {
		m.tierHist[m.tierIdx(addr)].Observe(float64(done - now))
	}
	return done
}

func checkTxnSize(size int) {
	if size < 8 || size > 64 || size%8 != 0 {
		panic(fmt.Sprintf("smem: transaction size %d outside 8..64 in 8-byte increments", size))
	}
}

// Read performs a read transaction of 8–64 bytes (8-byte increments),
// returning the data and the virtual completion time.
func (m *Memory) Read(now sim.Time, addr uint64, size int) ([]byte, sim.Time) {
	b := make([]byte, size)
	return b, m.ReadInto(now, addr, b)
}

// ReadInto is Read into caller-owned storage: identical transaction
// accounting, no allocation. len(b) must be a legal transaction size.
func (m *Memory) ReadInto(now sim.Time, addr uint64, b []byte) sim.Time {
	checkTxnSize(len(b))
	m.load(addr, b)
	done := m.occupy(m.engineFor(addr), now, serviceCycles(len(b), 1))
	return m.complete(now, addr, done)
}

// Write performs a write transaction of 8–64 bytes (8-byte increments).
func (m *Memory) Write(now sim.Time, addr uint64, data []byte) sim.Time {
	checkTxnSize(len(data))
	m.store(addr, data)
	done := m.occupy(m.engineFor(addr), now, serviceCycles(len(data), 1))
	return m.complete(now, addr, done)
}

// ReadRaw reads arbitrary bytes without engine accounting — a control-plane
// or debugging view of memory (e.g. verifying an aggregation buffer in
// tests). The data path must use the transaction API.
func (m *Memory) ReadRaw(addr uint64, size int) []byte {
	b := make([]byte, size)
	m.load(addr, b)
	return b
}

// WriteRaw writes arbitrary bytes without engine accounting (control plane).
func (m *Memory) WriteRaw(addr uint64, data []byte) { m.store(addr, data) }

// ReadUint64 is a convenience 8-byte big-endian read via the data path.
func (m *Memory) ReadUint64(now sim.Time, addr uint64) (uint64, sim.Time) {
	b, done := m.Read(now, addr, 8)
	return binary.BigEndian.Uint64(b), done
}

// WriteUint64 is a convenience 8-byte big-endian write via the data path.
func (m *Memory) WriteUint64(now sim.Time, addr uint64, v uint64) sim.Time {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return m.Write(now, addr, b[:])
}

// EngineStats summarizes one RMW engine's activity.
type EngineStats struct {
	Ops         uint64
	BusyCycles  uint64
	Backlogged  uint64
	MaxQueueing sim.Time
}

// Stats reports per-engine statistics, indexed by engine number.
func (m *Memory) Stats() []EngineStats {
	out := make([]EngineStats, len(m.engines))
	for i, e := range m.engines {
		out[i] = EngineStats{Ops: e.ops, BusyCycles: e.busyCycles, Backlogged: e.backlogged, MaxQueueing: e.maxQueueing}
	}
	return out
}

// TotalOps sums operations across all engines.
func (m *Memory) TotalOps() uint64 {
	var n uint64
	for _, e := range m.engines {
		n += e.ops
	}
	return n
}
