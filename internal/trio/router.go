// Package trio assembles Packet Forwarding Engines and the interconnection
// fabric into a complete router in the style of Juniper's MX-series chassis
// (Fig. 1a of the paper): external ports attach servers or other devices to
// individual PFEs; internal fabric connections let PFEs exchange packets
// directly, which is what hierarchical aggregation (§4) rides on.
package trio

import (
	"fmt"

	"github.com/trioml/triogo/internal/sim"
	"github.com/trioml/triogo/internal/trio/fabric"
	"github.com/trioml/triogo/internal/trio/pfe"
)

// Config sizes a router.
type Config struct {
	NumPFEs int
	PFE     pfe.Config
	Fabric  fabric.Config
}

// FabricFlowBase offsets fabric-delivered flows in the reorder engine's key
// space so they never collide with external ingress flows.
const FabricFlowBase = 1 << 48

// Router is a multi-PFE Trio device.
type Router struct {
	Engine *sim.Engine
	Fabric *fabric.Fabric

	pfes      []*pfe.PFE
	external  map[portKey]pfe.Output
	internal  map[portKey]internalLink
	flowOfPkt func(frame []byte) uint64
}

type portKey struct {
	pfeID, port int
}

type internalLink struct {
	dstPFE, dstPort int
}

// New builds a router with cfg.NumPFEs PFEs on one simulation engine.
func New(eng *sim.Engine, cfg Config) *Router {
	if cfg.NumPFEs <= 0 {
		cfg.NumPFEs = 1
	}
	r := &Router{
		Engine:   eng,
		Fabric:   fabric.New(eng, cfg.NumPFEs, cfg.Fabric),
		external: make(map[portKey]pfe.Output),
		internal: make(map[portKey]internalLink),
	}
	for i := 0; i < cfg.NumPFEs; i++ {
		pcfg := cfg.PFE
		pcfg.ID = i
		p := pfe.New(eng, pcfg)
		id := i
		p.SetOutput(func(port int, frame []byte, at sim.Time) { r.route(id, port, frame) })
		r.pfes = append(r.pfes, p)
	}
	return r
}

// NumPFEs reports the PFE count.
func (r *Router) NumPFEs() int { return len(r.pfes) }

// PFE returns PFE i.
func (r *Router) PFE(i int) *pfe.PFE { return r.pfes[i] }

// SetFlowClassifier installs the function that derives a reorder-engine flow
// key from a frame arriving over the fabric. Without one, fabric arrivals
// use a single flow per (src PFE egress port).
func (r *Router) SetFlowClassifier(fn func(frame []byte) uint64) { r.flowOfPkt = fn }

// AttachExternal binds an external receiver (a server NIC, a peer router) to
// a PFE port. Frames the PFE forwards out that port are delivered to out.
func (r *Router) AttachExternal(pfeID, port int, out pfe.Output) {
	k := portKey{pfeID, port}
	if _, dup := r.internal[k]; dup {
		panic(fmt.Sprintf("trio: port %v already connected internally", k))
	}
	r.external[k] = out
}

// ConnectInternal joins (pfeA, portA) and (pfeB, portB) across the fabric in
// both directions, the way line-card PFEs interconnect inside a chassis.
func (r *Router) ConnectInternal(pfeA, portA, pfeB, portB int) {
	ka, kb := portKey{pfeA, portA}, portKey{pfeB, portB}
	for _, k := range []portKey{ka, kb} {
		if _, dup := r.external[k]; dup {
			panic(fmt.Sprintf("trio: port %v already attached externally", k))
		}
	}
	r.internal[ka] = internalLink{dstPFE: pfeB, dstPort: portB}
	r.internal[kb] = internalLink{dstPFE: pfeA, dstPort: portA}
}

// Inject delivers a frame arriving from outside on (pfeID, port) with the
// given reorder flow key.
func (r *Router) Inject(pfeID, port int, flow uint64, frame []byte) {
	r.pfes[pfeID].Inject(port, flow, frame)
}

// route dispatches a PFE egress frame to its attached destination.
func (r *Router) route(pfeID, port int, frame []byte) {
	k := portKey{pfeID, port}
	if out, ok := r.external[k]; ok {
		out(port, frame, r.Engine.Now())
		return
	}
	if link, ok := r.internal[k]; ok {
		src := pfeID
		r.Fabric.Send(src, link.dstPFE, frame, func(f []byte, at sim.Time) {
			flow := FabricFlowBase | uint64(src)<<16 | uint64(port)
			if r.flowOfPkt != nil {
				flow = FabricFlowBase | r.flowOfPkt(f)
			}
			r.pfes[link.dstPFE].Inject(link.dstPort, flow, f)
		})
		return
	}
	// Unattached port: the frame leaves the simulated world (black-holed),
	// which mirrors an unconnected physical port.
}
