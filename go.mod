module github.com/trioml/triogo

go 1.24
